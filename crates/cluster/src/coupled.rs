//! The coupled cluster engine: conservative time windows, feedback load
//! balancing, cross-node failover.
//!
//! # The conservative-window protocol
//!
//! The independent engine ([`crate::sim::run_cluster`]) shards the whole
//! burst up front and runs every node to completion in isolation — sound
//! only because nothing a node does can influence another node or the
//! controller. Feedback load balancing and cross-node failover break that
//! independence: the controller's routing decision for a call depends on
//! node state *at the call's release time*, and a failed attempt may
//! resume on a different node.
//!
//! The coupled engine recovers parallelism with the classic conservative
//! lookahead argument of parallel discrete-event simulation. Nodes only
//! interact through the controller, and every controller→node delivery
//! charges at least one network hop, so events on one node cannot affect
//! another within less than the hop latency. The engine therefore advances
//! all nodes in lock-step windows:
//!
//! ```text
//! loop {
//!     t       = earliest pending work anywhere
//!               (node event, unrouted arrival, undelivered handoff)
//!     horizon = t + lookahead
//!     1. route every arrival with release <= horizon      (sequential)
//!     2. deliver every handoff with due <= horizon        (sequential)
//!     3. advance every node to `horizon`                  (parallel)
//!     4. collect the nodes' failover outboxes             (sequential)
//! }
//! ```
//!
//! Routing (steps 1–2) sees the [`NodeProgress`] snapshots of the previous
//! barrier plus the calls it has routed since — a stale-by-at-most-one-
//! window view, exactly the staleness a real controller's health polling
//! has. Step 3 is the only parallel section and each node's simulator is
//! self-contained, so the run is a pure function of `(seed, lookahead)`:
//! bit-identical across reruns *and thread counts*. Narrower windows give
//! the controller fresher queue signals; wider windows amortize barrier
//! overhead. `lookahead = `[`SimDuration::MAX`] degenerates to one window
//! — with a static policy that is the independent engine bit-for-bit.
//!
//! # Cross-node failover
//!
//! With [`ClusterConfig::failover`] on, a failed attempt with retries left
//! leaves its node as a [`Handoff`] instead of backing off locally. The
//! engine collects outboxes at each barrier and re-injects every due
//! handoff on the least-loaded healthy node (lowest index on ties,
//! preferring nodes other than the one that failed), no earlier than the
//! barrier at which it was collected — failover cannot run ahead of the
//! window protocol, which is why it requires a finite lookahead. The
//! attempt counter carries across nodes: a policy of `n` attempts spends
//! `n` attempts cluster-wide.

use crate::lb::{FeedbackRouter, NodeView};
use crate::sim::{node_seeds, ClusterConfig, ClusterScenario};
use faas_invoker::{Handoff, NodeMode, NodeProgress, NodeResult, NodeSim};
use faas_simcore::time::{SimDuration, SimTime};
use faas_workload::faults::FaultSpec;
use faas_workload::generate::{ShardedGenerator, WorkloadSpec};
use faas_workload::scenario::{warmup_calls_for_waves, warmup_waves as warmup_waves_for};
use faas_workload::sebs::Catalogue;
use faas_workload::trace::Call;
use faas_workload::weight::WeightTable;
use rayon::prelude::*;

/// Run a materialized [`ClusterScenario`] on the coupled engine. With a
/// static policy and infinite lookahead this reproduces
/// [`crate::sim::run_cluster_faulted`] bit-for-bit; feedback policies and
/// failover require this entry point.
pub fn run_cluster_coupled(
    catalogue: &Catalogue,
    scenario: &ClusterScenario,
    mode: &NodeMode,
    cfg: &ClusterConfig,
    weights: &WeightTable,
    faults: &FaultSpec,
    seed: u64,
) -> NodeResult {
    let assignment = if cfg.lb.is_feedback() {
        None
    } else {
        Some(cfg.lb.assign(&scenario.burst, cfg.nodes))
    };
    let warmup = scenario.node_warmup(cfg.node.cores, scenario.burst.len() as u64);
    NodeResult::merge(coupled_engine(
        catalogue,
        &scenario.burst,
        assignment.as_deref(),
        &warmup,
        mode,
        cfg,
        weights,
        faults,
        seed,
    ))
}

/// Run a [`WorkloadSpec`] on the coupled engine (the streamed-generation
/// counterpart of [`run_cluster_coupled`]; the burst is generated in
/// parallel chunks, then routed through the windows). Under
/// [`crate::lb::LoadBalancer::RoundRobin`] the static assignment strides
/// the generation-index space — the same shard
/// [`crate::sim::run_cluster_streamed`] gives node `k` — so infinite
/// lookahead reproduces the streamed engine bit-for-bit.
pub fn run_cluster_streamed_coupled(
    catalogue: &Catalogue,
    spec: &WorkloadSpec,
    mode: &NodeMode,
    cfg: &ClusterConfig,
    faults: &FaultSpec,
    scenario_seed: u64,
    sim_seed: u64,
) -> NodeResult {
    NodeResult::merge(run_cluster_streamed_coupled_per_node(
        catalogue,
        spec,
        mode,
        cfg,
        faults,
        scenario_seed,
        sim_seed,
    ))
}

/// Per-node variant of [`run_cluster_streamed_coupled`]: the same engine
/// and bit-identical routing, but each node's [`NodeResult`] is returned
/// separately (index = node id) instead of merged. The resource-
/// utilization experiments need the per-node `served_cpu_secs` /
/// `served_mem_units` split to compute cross-node dominant-share fairness,
/// which a merged result erases.
pub fn run_cluster_streamed_coupled_per_node(
    catalogue: &Catalogue,
    spec: &WorkloadSpec,
    mode: &NodeMode,
    cfg: &ClusterConfig,
    faults: &FaultSpec,
    scenario_seed: u64,
    sim_seed: u64,
) -> Vec<NodeResult> {
    use crate::lb::LoadBalancer;
    let (warmup_waves, burst_start) = warmup_waves_for(catalogue);
    let generator = ShardedGenerator::new(spec, catalogue, burst_start, scenario_seed);
    let weights = spec.weights.table(catalogue);
    let id_base = generator.len();
    let mut burst = generator.generate_parallel();
    burst.sort_by_key(|c| (c.release, c.id));
    let assignment = match cfg.lb {
        // A call's id is its generation index, so its stride node is
        // exactly the `iter_stride` shard of the streamed independent
        // engine.
        LoadBalancer::RoundRobin => Some(
            burst
                .iter()
                .map(|c| c.stride_node(cfg.nodes))
                .collect::<Vec<u16>>(),
        ),
        LoadBalancer::FunctionHash => Some(cfg.lb.assign(&burst, cfg.nodes)),
        LoadBalancer::JoinShortestQueue { .. }
        | LoadBalancer::PowerOfTwoChoices { .. }
        | LoadBalancer::JoinShortestDominant { .. }
        | LoadBalancer::PowerOfTwoDominant { .. } => None,
    };
    let warmup = warmup_calls_for_waves(&warmup_waves, cfg.node.cores, id_base);
    coupled_engine(
        catalogue,
        &burst,
        assignment.as_deref(),
        &warmup,
        mode,
        cfg,
        &weights,
        faults,
        sim_seed,
    )
}

/// Pick the failover target: least-loaded healthy node, lowest index on
/// ties, preferring nodes other than the one the attempt failed on. With
/// nothing else alive the handoff goes back to `from` (it queues there
/// until the restart), and with the whole cluster down liveness is
/// ignored.
fn failover_target(views: &[NodeView], from: u16) -> u16 {
    let pick = |pred: &dyn Fn(usize) -> bool| {
        (0..views.len())
            .filter(|&n| pred(n))
            .min_by_key(|&n| (views[n].backlog, n))
            .map(|n| n as u16)
    };
    pick(&|n| views[n].alive && n as u16 != from)
        .or_else(|| pick(&|n| views[n].alive))
        .or_else(|| pick(&|_| true))
        .expect("cluster needs at least one node")
}

/// The window loop shared by both entry points. `burst` must be sorted by
/// `(release, id)`; `assignment` (parallel to `burst`) fixes a static
/// routing, `None` routes through the feedback policy of `cfg.lb`.
#[allow(clippy::too_many_arguments)]
fn coupled_engine(
    catalogue: &Catalogue,
    burst: &[Call],
    assignment: Option<&[u16]>,
    warmup: &[Call],
    mode: &NodeMode,
    cfg: &ClusterConfig,
    weights: &WeightTable,
    faults: &FaultSpec,
    sim_seed: u64,
) -> Vec<NodeResult> {
    assert!(cfg.nodes > 0, "cluster needs at least one node");
    assert!(
        !cfg.failover || cfg.lookahead < SimDuration::MAX,
        "failover handoffs are delivered at window barriers: a finite \
         lookahead is required"
    );
    debug_assert!(
        burst
            .windows(2)
            .all(|w| (w[0].release, w[0].id) <= (w[1].release, w[1].id)),
        "burst must be sorted by (release, id)"
    );
    let seeds = node_seeds(sim_seed, cfg.nodes);
    let mut nodes: Vec<NodeSim> = seeds
        .iter()
        .map(|&(node, node_seed)| {
            let mut sim = NodeSim::new(
                catalogue,
                mode,
                &cfg.node,
                weights,
                faults,
                node_seed,
                node,
                cfg.failover,
            );
            sim.inject(warmup);
            sim
        })
        .collect();

    let mut router = assignment.is_none().then(|| FeedbackRouter::new(cfg.lb));
    // The controller's view: each node's backlog at the last barrier plus
    // the calls routed there since (self-feedback within a window), and
    // its last observed liveness.
    let mut views = vec![
        NodeView {
            backlog: 0,
            alive: true,
            dominant_milli: 0,
        };
        cfg.nodes as usize
    ];
    let mut batches: Vec<Vec<Call>> = vec![Vec::new(); cfg.nodes as usize];
    let mut cursor = 0usize;
    // Collected but not yet delivered handoffs, sorted by (due, call id).
    let mut pending: Vec<Handoff> = Vec::new();
    let mut barrier = SimTime::ZERO;

    loop {
        // The earliest pending work anywhere bounds the next window.
        let mut t = nodes.iter().filter_map(|n| n.next_event_time()).min();
        if let Some(call) = burst.get(cursor) {
            t = Some(t.map_or(call.release, |t| t.min(call.release)));
        }
        if let Some(h) = pending.first() {
            t = Some(t.map_or(h.due, |t| t.min(h.due)));
        }
        let Some(t) = t else { break };
        let horizon = t + cfg.lookahead; // saturates at SimTime::MAX

        // 1. Route this window's arrivals. Batches stay (release, id)-
        // sorted because the burst is walked in that order.
        while let Some(call) = burst.get(cursor) {
            if call.release > horizon {
                break;
            }
            let node = match assignment {
                Some(a) => a[cursor],
                None => router.as_mut().expect("feedback policy").route(&views),
            };
            views[node as usize].backlog += 1;
            batches[node as usize].push(*call);
            cursor += 1;
        }
        for (node, batch) in batches.iter_mut().enumerate() {
            if !batch.is_empty() {
                nodes[node].inject(batch);
                batch.clear();
            }
        }

        // 2. Deliver due handoffs, never earlier than the barrier they
        // were collected at (the engine cannot deliver into a window that
        // already ran).
        while pending.first().is_some_and(|h| h.due <= horizon) {
            let h = pending.remove(0);
            let target = failover_target(&views, h.from);
            views[target as usize].backlog += 1;
            nodes[target as usize].inject_handoff(&h, h.due.max(barrier));
        }

        // 3. Advance every node through the window in parallel. Each
        // simulator is self-contained and the chunked pool preserves
        // order, so the snapshots are thread-count invariant.
        let progress: Vec<NodeProgress> = nodes
            .par_iter_mut()
            .map(|n| n.advance_to(horizon))
            .collect();
        for (v, p) in views.iter_mut().zip(&progress) {
            *v = NodeView {
                backlog: p.backlog(),
                alive: p.alive,
                dominant_milli: p.dominant_milli,
            };
        }

        // 4. Collect failover outboxes in node order (deterministic), keep
        // the pending list sorted by (due, id).
        for n in nodes.iter_mut() {
            pending.extend(n.take_handoffs());
        }
        pending.sort_by_key(|h| (h.due, h.call.id));
        barrier = horizon;
    }

    assert_eq!(cursor, burst.len(), "every burst call was routed");
    assert!(pending.is_empty(), "every handoff was delivered");
    nodes.into_iter().map(|n| n.finish()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lb::LoadBalancer;
    use crate::sim::{run_cluster_faulted, run_cluster_streamed, run_cluster_streamed_faulted};
    use faas_core::{Policy, SchedulerConfig};
    use faas_invoker::NodeConfig;
    use faas_workload::arrival::ArrivalSpec;
    use faas_workload::mix::MixSpec;
    use faas_workload::weight::WeightSpec;

    fn catalogue() -> Catalogue {
        Catalogue::sebs()
    }

    fn streamed_spec(count: usize) -> WorkloadSpec {
        WorkloadSpec {
            arrival: ArrivalSpec::Uniform { count },
            mix: MixSpec::Equal,
            weights: WeightSpec::Uniform,
            window: SimDuration::from_secs(60),
        }
    }

    fn crash_faults(seed: u64) -> FaultSpec {
        let (_, burst_start) = warmup_waves_for(&catalogue());
        let mut faults = FaultSpec::crash_restart(seed, burst_start, SimDuration::from_secs(60));
        faults.transient_failure = 0.05;
        faults
    }

    #[test]
    fn infinite_lookahead_static_lb_reproduces_the_streamed_engine() {
        // The tentpole regression: one window + static sharding IS the
        // independent engine — outcomes, drops, fault stats, pool stats,
        // every peak, bit for bit. Both LB policies, both node modes,
        // with and without faults.
        let cat = catalogue();
        let spec = streamed_spec(132);
        let faults = crash_faults(21);
        for lb in [LoadBalancer::RoundRobin, LoadBalancer::FunctionHash] {
            for mode in [
                NodeMode::Baseline,
                NodeMode::Scheduled(SchedulerConfig::paper(Policy::FairChoice)),
            ] {
                let cfg = ClusterConfig::independent(3, NodeConfig::paper(10), lb);
                let plain = run_cluster_streamed(&cat, &spec, &mode, &cfg, 1, 2);
                let coupled = run_cluster_streamed_coupled(
                    &cat,
                    &spec,
                    &mode,
                    &cfg,
                    &FaultSpec::none(),
                    1,
                    2,
                );
                assert_eq!(plain.outcomes, coupled.outcomes, "{lb:?}");
                assert_eq!(plain.peak_events, coupled.peak_events, "{lb:?}");
                assert_eq!(plain.measured_pool_stats, coupled.measured_pool_stats);
                let plainf = run_cluster_streamed_faulted(&cat, &spec, &mode, &cfg, &faults, 1, 2);
                let coupledf =
                    run_cluster_streamed_coupled(&cat, &spec, &mode, &cfg, &faults, 1, 2);
                assert_eq!(plainf.outcomes, coupledf.outcomes, "{lb:?} faulted");
                assert_eq!(plainf.drops, coupledf.drops, "{lb:?} faulted");
                assert_eq!(plainf.fault_stats, coupledf.fault_stats, "{lb:?} faulted");
            }
        }
    }

    #[test]
    fn infinite_lookahead_materialized_matches_run_cluster_faulted() {
        let cat = catalogue();
        let scenario = ClusterScenario::generate(&cat, 12, 10, SimDuration::from_secs(60), 2);
        let weights = WeightTable::uniform(cat.len());
        let faults = crash_faults(33);
        let cfg = ClusterConfig::independent(2, NodeConfig::paper(10), LoadBalancer::FunctionHash);
        let mode = NodeMode::Baseline;
        let plain = run_cluster_faulted(&cat, &scenario, &mode, &cfg, &weights, &faults, 3);
        let coupled = run_cluster_coupled(&cat, &scenario, &mode, &cfg, &weights, &faults, 3);
        assert_eq!(plain.outcomes, coupled.outcomes);
        assert_eq!(plain.drops, coupled.drops);
        assert_eq!(plain.fault_stats, coupled.fault_stats);
        assert_eq!(plain.peak_events, coupled.peak_events);
    }

    #[test]
    fn finite_windows_conserve_calls_and_rerun_bit_identically() {
        let cat = catalogue();
        let spec = streamed_spec(264);
        let cfg = ClusterConfig::independent(3, NodeConfig::paper(10), LoadBalancer::RoundRobin)
            .coupled(SimDuration::from_millis(250), false);
        let mode = NodeMode::Scheduled(SchedulerConfig::paper(Policy::FairChoice));
        let r = run_cluster_streamed_coupled(&cat, &spec, &mode, &cfg, &FaultSpec::none(), 5, 6);
        assert_eq!(
            r.outcomes.iter().filter(|o| o.is_measured()).count(),
            264,
            "windowing must not lose calls"
        );
        let again =
            run_cluster_streamed_coupled(&cat, &spec, &mode, &cfg, &FaultSpec::none(), 5, 6);
        assert_eq!(r.outcomes, again.outcomes);
        assert_eq!(r.peak_events, again.peak_events);
    }

    #[test]
    fn per_node_results_sum_to_the_merged_entry_point() {
        // The per-node variant is the same engine: node count of results,
        // and outcome counts / served work that merge to exactly what the
        // merged entry point reports, dominant routing included.
        let cat = catalogue();
        let mut spec = streamed_spec(132);
        spec.weights = WeightSpec::paper_tiers_mem();
        let cfg = ClusterConfig::independent(
            3,
            NodeConfig::paper(10).with_mem_bandwidth(8.0),
            LoadBalancer::JoinShortestDominant { seed: 11 },
        )
        .coupled(SimDuration::from_millis(250), false);
        let mode = NodeMode::Baseline;
        let per_node = run_cluster_streamed_coupled_per_node(
            &cat,
            &spec,
            &mode,
            &cfg,
            &FaultSpec::none(),
            5,
            6,
        );
        assert_eq!(per_node.len(), 3, "one result per node");
        let merged =
            run_cluster_streamed_coupled(&cat, &spec, &mode, &cfg, &FaultSpec::none(), 5, 6);
        assert_eq!(
            per_node.iter().map(|r| r.outcomes.len()).sum::<usize>(),
            merged.outcomes.len(),
            "outcomes partition across nodes"
        );
        let cpu: f64 = per_node.iter().map(|r| r.served_cpu_secs).sum();
        let mem: f64 = per_node.iter().map(|r| r.served_mem_units).sum();
        assert!((cpu - merged.served_cpu_secs).abs() < 1e-9);
        assert!((mem - merged.served_mem_units).abs() < 1e-9);
        assert!(mem > 0.0, "the memory-tiered spec exercises the mem axis");
    }

    #[test]
    fn coupled_runs_are_thread_count_invariant() {
        // The whole point of the conservative protocol: the schedule is a
        // pure function of (seed, lookahead), however many worker threads
        // advance the nodes. Serialized via the env-var lock inherent in
        // running this test in one process: set, run, restore.
        let cat = catalogue();
        let spec = streamed_spec(132);
        let cfg = ClusterConfig::independent(
            4,
            NodeConfig::paper(10),
            LoadBalancer::JoinShortestQueue { seed: 7 },
        )
        .coupled(SimDuration::from_millis(500), true);
        let faults = crash_faults(41);
        let mode = NodeMode::Scheduled(SchedulerConfig::paper(Policy::FairChoice));
        let parallel = run_cluster_streamed_coupled(&cat, &spec, &mode, &cfg, &faults, 7, 8);
        std::env::set_var("RAYON_NUM_THREADS", "1");
        let serial = run_cluster_streamed_coupled(&cat, &spec, &mode, &cfg, &faults, 7, 8);
        std::env::remove_var("RAYON_NUM_THREADS");
        assert_eq!(parallel.outcomes, serial.outcomes);
        assert_eq!(parallel.drops, serial.drops);
        assert_eq!(parallel.fault_stats, serial.fault_stats);
        assert_eq!(parallel.peak_events, serial.peak_events);
    }

    #[test]
    fn feedback_policies_route_every_call_and_differ_from_round_robin() {
        let cat = catalogue();
        let spec = streamed_spec(264);
        let mode = NodeMode::Scheduled(SchedulerConfig::paper(Policy::FairChoice));
        let run = |lb: LoadBalancer| {
            let cfg = ClusterConfig::independent(3, NodeConfig::paper(10), lb)
                .coupled(SimDuration::from_millis(500), false);
            run_cluster_streamed_coupled(&cat, &spec, &mode, &cfg, &FaultSpec::none(), 9, 10)
        };
        let rr = run(LoadBalancer::RoundRobin);
        let jsq = run(LoadBalancer::JoinShortestQueue { seed: 1 });
        let p2c = run(LoadBalancer::PowerOfTwoChoices { seed: 1 });
        for r in [&rr, &jsq, &p2c] {
            let measured: Vec<_> = r.outcomes.iter().filter(|o| o.is_measured()).collect();
            assert_eq!(measured.len(), 264);
            let mut ids: Vec<u64> = measured.iter().map(|o| o.id.0).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 264, "each call served exactly once");
            let nodes: std::collections::BTreeSet<u16> = measured.iter().map(|o| o.node).collect();
            assert_eq!(nodes.len(), 3, "every node serves traffic");
        }
        assert_ne!(rr.outcomes, jsq.outcomes, "JSQ must route differently");
        assert_ne!(
            jsq.outcomes, p2c.outcomes,
            "two probes differ from global min"
        );
    }

    #[test]
    fn dominant_share_policies_route_every_call_and_rerun_identically() {
        // The dominant-share feedback policies run the same window
        // protocol: every call resolves exactly once, every node serves
        // traffic, and reruns are bit-identical. With a memory-bandwidth
        // axis modeled the dominant signal carries real information (some
        // functions are bandwidth-heavy), so the routing may legitimately
        // differ from plain JSQ's.
        let cat = catalogue();
        let spec = streamed_spec(264);
        let mode = NodeMode::Scheduled(SchedulerConfig::paper(Policy::FairChoice));
        let node = NodeConfig::paper(10).with_mem_bandwidth(4.0);
        let run = |lb: LoadBalancer| {
            let cfg = ClusterConfig::independent(3, node, lb)
                .coupled(SimDuration::from_millis(500), false);
            run_cluster_streamed_coupled(&cat, &spec, &mode, &cfg, &FaultSpec::none(), 9, 10)
        };
        for lb in [
            LoadBalancer::JoinShortestDominant { seed: 1 },
            LoadBalancer::PowerOfTwoDominant { seed: 1 },
        ] {
            let r = run(lb);
            let measured: Vec<_> = r.outcomes.iter().filter(|o| o.is_measured()).collect();
            assert_eq!(measured.len(), 264, "{lb:?}");
            let mut ids: Vec<u64> = measured.iter().map(|o| o.id.0).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 264, "{lb:?}: each call served exactly once");
            let nodes: std::collections::BTreeSet<u16> = measured.iter().map(|o| o.node).collect();
            assert_eq!(nodes.len(), 3, "{lb:?}: every node serves traffic");
            let again = run(lb);
            assert_eq!(r.outcomes, again.outcomes, "{lb:?} rerun");
        }
    }

    #[test]
    fn failover_moves_retries_across_nodes_and_conserves_calls() {
        // Crash node 0 mid-burst with a strict no-local-timeout policy:
        // killed attempts must resume on the surviving nodes, and every
        // call still resolves exactly once cluster-wide.
        let cat = catalogue();
        let spec = streamed_spec(660);
        let faults = crash_faults(21);
        let cfg = ClusterConfig::independent(3, NodeConfig::paper(10), LoadBalancer::RoundRobin)
            .coupled(SimDuration::from_millis(500), true);
        let mode = NodeMode::Scheduled(SchedulerConfig::paper(Policy::FairChoice));
        let r = run_cluster_streamed_coupled(&cat, &spec, &mode, &cfg, &faults, 21, 22);
        let measured = r.outcomes.iter().filter(|o| o.is_measured()).count();
        let measured_drops = r.drops.iter().filter(|d| d.id.0 < 660).count();
        assert_eq!(measured + measured_drops, 660, "cluster call conservation");
        assert!(r.fault_stats.failovers > 0, "crash kills must hand off");
        assert_eq!(r.fault_stats.crashes, 1);
        // A failed-over retry lands on a healthy node: node 0 crashed, so
        // some calls released to node 0's shard complete elsewhere.
        let moved = r
            .outcomes
            .iter()
            .filter(|o| o.is_measured() && o.id.0 % 3 == 0 && o.node != 0)
            .count();
        assert!(moved > 0, "some node-0 calls must finish on other nodes");
        let again = run_cluster_streamed_coupled(&cat, &spec, &mode, &cfg, &faults, 21, 22);
        assert_eq!(r.outcomes, again.outcomes);
        assert_eq!(r.fault_stats, again.fault_stats);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn failover_requires_a_finite_lookahead() {
        let cat = catalogue();
        let faults = crash_faults(5);
        let cfg = ClusterConfig::independent(2, NodeConfig::paper(10), LoadBalancer::RoundRobin)
            .coupled(SimDuration::MAX, true);
        run_cluster_streamed_coupled(
            &cat,
            &streamed_spec(22),
            &NodeMode::Baseline,
            &cfg,
            &faults,
            1,
            2,
        );
    }

    #[test]
    fn narrower_windows_only_change_feedback_schedules() {
        // With a static policy the routing is window-invariant, so any
        // lookahead yields the same assignment (the service schedule may
        // shift only through handoff timing — disabled here). Sanity: the
        // call-to-node mapping is identical across window widths.
        let cat = catalogue();
        let spec = streamed_spec(132);
        let mode = NodeMode::Baseline;
        let node_of = |lookahead: SimDuration| {
            let cfg =
                ClusterConfig::independent(3, NodeConfig::paper(10), LoadBalancer::RoundRobin)
                    .coupled(lookahead, false);
            let r =
                run_cluster_streamed_coupled(&cat, &spec, &mode, &cfg, &FaultSpec::none(), 3, 4);
            let mut v: Vec<(u64, u16)> = r
                .outcomes
                .iter()
                .filter(|o| o.is_measured())
                .map(|o| (o.id.0, o.node))
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(
            node_of(SimDuration::from_millis(100)),
            node_of(SimDuration::MAX)
        );
    }
}
