//! # faas-cluster
//!
//! The multi-node substrate: a controller that routes calls to worker nodes
//! (§III: "A controller manages other entities and routes actions
//! invocations to invokers, acting as a load balancer"), plus the
//! multi-node experiment engine of §VIII.
//!
//! Worker nodes do not interact with each other in OpenWhisk — each invoker
//! manages its own container pool and queue — so a cluster simulation is
//! exactly: (1) assign every measured call to a node with the load-balancer
//! policy; (2) run one single-node simulation per worker (with its own
//! warm-up, as the paper warms all workers); (3) merge the outcomes.
//!
//! Two scenario paths feed the engine: [`sim::run_cluster`] replays a
//! materialized [`sim::ClusterScenario`] (the paper's fixed shared burst),
//! and [`sim::run_cluster_streamed`] lets every node stream its own slice
//! of a [`faas_workload::WorkloadSpec`] straight from the sharded
//! generator — no shared call vector, no serialized assignment.

pub mod lb;
pub mod sim;

pub use lb::LoadBalancer;
pub use sim::{
    run_cluster, run_cluster_faulted, run_cluster_streamed, run_cluster_streamed_faulted,
    run_cluster_weighted, ClusterConfig, ClusterScenario,
};
