//! # faas-cluster
//!
//! The multi-node substrate: a controller that routes calls to worker nodes
//! (§III: "A controller manages other entities and routes actions
//! invocations to invokers, acting as a load balancer"), plus the
//! multi-node experiment engine of §VIII.
//!
//! Worker nodes do not interact with each other in OpenWhisk — each invoker
//! manages its own container pool and queue — so with a *static* routing
//! policy a cluster simulation is exactly: (1) assign every measured call to
//! a node with the load-balancer policy; (2) run one single-node simulation
//! per worker (with its own warm-up, as the paper warms all workers);
//! (3) merge the outcomes.
//!
//! Two scenario paths feed that independent engine: [`sim::run_cluster`]
//! replays a materialized [`sim::ClusterScenario`] (the paper's fixed shared
//! burst), and [`sim::run_cluster_streamed`] lets every node stream its own
//! slice of a [`faas_workload::WorkloadSpec`] straight from the sharded
//! generator — no shared call vector, no serialized assignment.
//!
//! Feedback policies ([`lb::LoadBalancer::JoinShortestQueue`],
//! [`lb::LoadBalancer::PowerOfTwoChoices`]) and cross-node failover couple
//! the nodes through the controller; those run on the [`coupled`] engine,
//! which advances every node's resumable simulator in conservative
//! lock-step windows of width [`sim::ClusterConfig::lookahead`] (see the
//! [`coupled`] module docs for the protocol and its determinism argument).
//!
//! A third ingestion path replays fixed call logs: the [`trace_run`]
//! engines pull a [`faas_workload::TraceSource`] (a recorded file or a
//! lazily-synthesized trace) through bounded `chunk`-call ingestion
//! windows, so a 10^8-call day streams through the cluster without ever
//! being materialized. [`trace_run::run_cluster_source`] dispatches any
//! [`faas_workload::WorkloadSource`] — analytic spec or trace — onto the
//! right engine for the cluster configuration.

pub mod coupled;
pub mod lb;
pub mod sim;
pub mod trace_run;

pub use coupled::{
    run_cluster_coupled, run_cluster_streamed_coupled, run_cluster_streamed_coupled_per_node,
};
pub use lb::{FeedbackRouter, LoadBalancer, NodeView};
pub use sim::{
    run_cluster, run_cluster_faulted, run_cluster_streamed, run_cluster_streamed_faulted,
    run_cluster_weighted, ClusterConfig, ClusterScenario,
};
pub use trace_run::{run_cluster_source, run_cluster_trace_coupled, run_cluster_trace_streamed};
