//! Schema validation for the `BENCH_*.json` perf-trajectory artifacts.
//!
//! The continuous-benchmark files are consumed by dashboards keyed on
//! entry names and units, and PR 4 showed that a new file shape can drift
//! silently: nothing asserted that an artifact still parses, still records
//! the host thread count, or still carries the baseline/candidate timing
//! pairs the speedups are computed from. `experiments check-bench` (run by
//! CI right after `experiments bench`) fails loudly instead:
//!
//! * every `BENCH_*.json` in the output directory parses as a
//!   [`BenchEntry`] list with finite values — strictly positive for
//!   timing (`TIMING_UNITS`), ratio (`x`) and throughput (`calls/s`)
//!   entries, `>= 0` for count-style units (a zero `*_peak_resident` or
//!   drop counter is a legitimate measurement, not schema drift);
//! * every file records the host parallelism (an entry whose name
//!   contains `threads`, value an integer ≥ 1) so trajectory points stay
//!   attributable to their machine shape;
//! * every file carries at least one baseline/candidate timing pair (two
//!   or more entries in a wall-clock unit) plus the derived `*_speedup`
//!   ratio in unit `x`, and every `*_speedup` value is cross-validated
//!   against the ratio of its own baseline/candidate timing pair — a
//!   stale or miscomputed speedup fails loudly instead of merely
//!   existing;
//! * the eight canonical artifacts (`BENCH_gps.json`,
//!   `BENCH_weighted_gps.json`, `BENCH_drf.json`, `BENCH_events.json`,
//!   `BENCH_workload.json`, `BENCH_faults.json`, `BENCH_coupled.json`,
//!   `BENCH_replay.json`) are all present;
//! * the replay artifact additionally carries at least one throughput
//!   entry in unit `calls/s` — the trajectory number the 10^6/10^7/10^8
//!   scaling claim is plotted from.

use crate::bench_gps::BenchEntry;
use std::path::Path;

/// The artifacts `experiments bench` must produce.
pub const EXPECTED_ARTIFACTS: [&str; 8] = [
    "BENCH_gps.json",
    "BENCH_weighted_gps.json",
    "BENCH_drf.json",
    "BENCH_events.json",
    "BENCH_workload.json",
    "BENCH_faults.json",
    "BENCH_coupled.json",
    "BENCH_replay.json",
];

/// Wall-clock units a baseline/candidate timing may use.
pub const TIMING_UNITS: [&str; 4] = ["ns/iter", "ns/op", "ms/run", "ms"];

/// Relative tolerance when cross-validating a `*_speedup` value against
/// the ratio of its baseline/candidate timing pair. The ratio is computed
/// from the very floats stored next to it (values round-trip exactly
/// through JSON), so anything beyond rounding slack means the speedup is
/// stale or miscomputed.
const SPEEDUP_RATIO_TOL: f64 = 1e-3;

/// Units whose entries must be strictly positive: a zero timing, speedup
/// or throughput is always a measurement bug. Count-style units (`count`,
/// `calls`, …) legitimately report 0 (an empty working set, no drops).
fn requires_strict_positive(unit: &str) -> bool {
    TIMING_UNITS.contains(&unit) || unit == "x" || unit == "calls/s"
}

/// Validate one artifact's entry list. `name` is used in error messages.
pub fn validate_entries(name: &str, entries: &[BenchEntry]) -> Result<(), String> {
    if entries.is_empty() {
        return Err(format!("{name}: empty entry list"));
    }
    for e in entries {
        if e.name.is_empty() || e.unit.is_empty() {
            return Err(format!("{name}: entry with empty name or unit"));
        }
        if !e.value.is_finite() || e.value < 0.0 {
            return Err(format!(
                "{name}: entry `{}` has non-finite or negative value {}",
                e.name, e.value
            ));
        }
        if e.value == 0.0 && requires_strict_positive(&e.unit) {
            return Err(format!(
                "{name}: entry `{}` is zero in unit `{}` (timings, speedups and \
                 throughputs must be strictly positive)",
                e.name, e.unit
            ));
        }
    }
    let threads = entries
        .iter()
        .find(|e| e.name.contains("threads"))
        .ok_or_else(|| format!("{name}: no thread-count entry (host shape unrecorded)"))?;
    if threads.value < 1.0 || threads.value.fract() != 0.0 {
        return Err(format!(
            "{name}: thread-count entry `{}` is not a positive integer ({})",
            threads.name, threads.value
        ));
    }
    let timings = entries
        .iter()
        .filter(|e| TIMING_UNITS.contains(&e.unit.as_str()))
        .count();
    if timings < 2 {
        return Err(format!(
            "{name}: found {timings} timing entries, need a baseline/candidate pair"
        ));
    }
    if !entries
        .iter()
        .any(|e| e.name.ends_with("_speedup") && e.unit == "x")
    {
        return Err(format!("{name}: no `*_speedup` ratio entry in unit `x`"));
    }
    for speedup in entries
        .iter()
        .filter(|e| e.name.ends_with("_speedup") && e.unit == "x")
    {
        cross_validate_speedup(name, speedup, entries)?;
    }
    if name.contains("replay")
        && !entries
            .iter()
            .any(|e| e.name.ends_with("_calls_per_sec") && e.unit == "calls/s")
    {
        return Err(format!(
            "{name}: no `*_calls_per_sec` throughput entry in unit `calls/s`"
        ));
    }
    Ok(())
}

/// Cross-validate one `*_speedup` entry against its baseline/candidate
/// timing pair: strip `_speedup`, then shorten the stem one `_`-segment at
/// a time until at least two timing entries share the prefix (the bench
/// modules name pairs `<stem>_reference`/`<stem>_virtual_time`,
/// `<stem>_serial_wall`/`<stem>_sharded_wall`, …). The speedup must equal
/// the ratio of one ordered pair within [`SPEEDUP_RATIO_TOL`].
fn cross_validate_speedup(
    name: &str,
    speedup: &BenchEntry,
    entries: &[BenchEntry],
) -> Result<(), String> {
    let full_stem = speedup
        .name
        .strip_suffix("_speedup")
        .expect("caller filtered on the suffix");
    let mut stem = full_stem;
    let timings = loop {
        let matches: Vec<&BenchEntry> = entries
            .iter()
            .filter(|e| {
                TIMING_UNITS.contains(&e.unit.as_str())
                    && e.name.len() > stem.len() + 1
                    && e.name.starts_with(stem)
                    && e.name.as_bytes()[stem.len()] == b'_'
            })
            .collect();
        if matches.len() >= 2 {
            break matches;
        }
        match stem.rfind('_') {
            Some(i) => stem = &stem[..i],
            None => {
                return Err(format!(
                    "{name}: speedup `{}` has no `{full_stem}*` baseline/candidate \
                     timing pair to validate against",
                    speedup.name
                ))
            }
        }
    };
    let matched = timings.iter().any(|a| {
        timings.iter().any(|b| {
            a.name != b.name && b.value > 0.0 && {
                let ratio = a.value / b.value;
                (ratio - speedup.value).abs() <= SPEEDUP_RATIO_TOL * speedup.value.max(ratio)
            }
        })
    });
    if matched {
        Ok(())
    } else {
        let candidates: Vec<&str> = timings.iter().map(|e| e.name.as_str()).collect();
        Err(format!(
            "{name}: speedup `{}` = {} does not match the ratio of any `{stem}_*` \
             timing pair (candidates: {candidates:?}) — stale or miscomputed",
            speedup.name, speedup.value
        ))
    }
}

/// Validate every `BENCH_*.json` under `dir` and check the canonical set
/// is present. The append-only [`crate::bench_history::HISTORY_FILE`]
/// shares the `BENCH_` prefix but is a different (multi-commit) document,
/// so it is skipped here. Returns the validated file names.
pub fn validate_dir(dir: &Path) -> Result<Vec<String>, String> {
    let mut seen = Vec::new();
    let listing = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in listing {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let file_name = entry.file_name().to_string_lossy().into_owned();
        if !(file_name.starts_with("BENCH_") && file_name.ends_with(".json"))
            || file_name == crate::bench_history::HISTORY_FILE
        {
            continue;
        }
        let path = entry.path();
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let entries: Vec<BenchEntry> = serde_json::from_str(&text)
            .map_err(|e| format!("{}: does not parse as a bench entry list: {e}", file_name))?;
        validate_entries(&file_name, &entries)?;
        seen.push(file_name);
    }
    for expected in EXPECTED_ARTIFACTS {
        if !seen.iter().any(|s| s == expected) {
            return Err(format!(
                "missing canonical artifact {expected} (found: {seen:?})"
            ));
        }
    }
    seen.sort();
    Ok(seen)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, value: f64, unit: &str) -> BenchEntry {
        BenchEntry {
            name: name.into(),
            value,
            unit: unit.into(),
        }
    }

    fn valid() -> Vec<BenchEntry> {
        vec![
            entry("x_n10_candidate", 120.0, "ns/iter"),
            entry("x_n10_reference", 360.0, "ns/iter"),
            entry("x_n10_speedup", 3.0, "x"),
            entry("x_threads", 4.0, "count"),
        ]
    }

    #[test]
    fn valid_shape_passes() {
        validate_entries("BENCH_x.json", &valid()).unwrap();
    }

    #[test]
    fn missing_threads_is_rejected() {
        let entries: Vec<BenchEntry> = valid()
            .into_iter()
            .filter(|e| !e.name.contains("threads"))
            .collect();
        let err = validate_entries("BENCH_x.json", &entries).unwrap_err();
        assert!(err.contains("thread-count"), "{err}");
    }

    #[test]
    fn missing_timing_pair_is_rejected() {
        let entries = vec![
            entry("x_n10_speedup", 3.0, "x"),
            entry("x_n10_candidate", 120.0, "ns/iter"),
            entry("x_threads", 4.0, "count"),
        ];
        let err = validate_entries("BENCH_x.json", &entries).unwrap_err();
        assert!(err.contains("baseline/candidate"), "{err}");
    }

    #[test]
    fn missing_speedup_and_bad_values_are_rejected() {
        let mut entries = valid();
        entries.retain(|e| !e.name.ends_with("_speedup"));
        assert!(validate_entries("BENCH_x.json", &entries)
            .unwrap_err()
            .contains("speedup"));
        let mut nan = valid();
        nan[0].value = f64::NAN;
        assert!(validate_entries("BENCH_x.json", &nan)
            .unwrap_err()
            .contains("non-finite"));
        let mut frac = valid();
        frac[3].value = 3.5;
        assert!(validate_entries("BENCH_x.json", &frac)
            .unwrap_err()
            .contains("positive integer"));
    }

    #[test]
    fn zero_valued_count_entries_are_legitimate() {
        // A zero working set or drop counter is a real measurement: only
        // timing/ratio/throughput units require strict positivity.
        let mut entries = valid();
        entries.push(entry("x_peak_resident", 0.0, "calls"));
        entries.push(entry("x_drops", 0.0, "count"));
        validate_entries("BENCH_x.json", &entries).unwrap();
    }

    #[test]
    fn zero_timing_ratio_and_throughput_are_rejected() {
        for (name, unit) in [
            ("x_n10_candidate", "ns/iter"),
            ("x_n10_speedup", "x"),
            ("x_rate", "calls/s"),
        ] {
            let mut entries = valid();
            entries.push(entry(name, 0.0, unit));
            let err = validate_entries("BENCH_x.json", &entries).unwrap_err();
            assert!(err.contains("strictly positive"), "{unit}: {err}");
        }
        let mut entries = valid();
        entries.push(entry("x_drops", -1.0, "count"));
        let err = validate_entries("BENCH_x.json", &entries).unwrap_err();
        assert!(err.contains("negative"), "{err}");
    }

    #[test]
    fn stale_speedup_is_rejected() {
        // The pair says 3.0x; a drifted stored ratio fails loudly.
        let mut entries = valid();
        entries
            .iter_mut()
            .find(|e| e.name.ends_with("_speedup"))
            .unwrap()
            .value = 2.4;
        let err = validate_entries("BENCH_x.json", &entries).unwrap_err();
        assert!(err.contains("stale or miscomputed"), "{err}");
    }

    #[test]
    fn speedup_pair_is_found_by_prefix_shortening() {
        // The workload-bench shape: the speedup shares only a shortened
        // prefix with its serial/sharded pair.
        let entries = vec![
            entry("gen_bulk_serial_wall", 200.0, "ms/run"),
            entry("gen_bulk_sharded_wall", 50.0, "ms/run"),
            entry("gen_bulk_sharded_speedup", 4.0, "x"),
            entry("gen_threads", 2.0, "count"),
        ];
        validate_entries("BENCH_x.json", &entries).unwrap();
        // Inverted direction (ratio < 1) also validates: either ordered
        // ratio of the pair may match.
        let entries = vec![
            entry("q_n16_indexed", 544.0, "ns/iter"),
            entry("q_n16_lazy", 432.0, "ns/iter"),
            entry("q_n16_speedup", 432.0 / 544.0, "x"),
            entry("q_threads", 1.0, "count"),
        ];
        validate_entries("BENCH_x.json", &entries).unwrap();
    }

    #[test]
    fn speedup_without_any_pair_names_the_entry() {
        let entries = vec![
            entry("a_left_wall", 100.0, "ms/run"),
            entry("b_right_wall", 100.0, "ms/run"),
            entry("orphan_speedup", 2.0, "x"),
            entry("x_threads", 1.0, "count"),
        ];
        let err = validate_entries("BENCH_x.json", &entries).unwrap_err();
        assert!(err.contains("orphan_speedup"), "{err}");
    }

    #[test]
    fn replay_artifact_requires_a_throughput_entry() {
        // The plain shape passes for any other artifact name but the
        // replay file must also carry calls/s.
        let entries = valid();
        validate_entries("BENCH_coupled.json", &entries).unwrap();
        let err = validate_entries("BENCH_replay.json", &entries).unwrap_err();
        assert!(err.contains("calls_per_sec"), "{err}");
        let mut with_rate = valid();
        with_rate.push(entry("x_c1000_calls_per_sec", 2.5e6, "calls/s"));
        validate_entries("BENCH_replay.json", &with_rate).unwrap();
    }

    #[test]
    fn weighted_bench_emits_a_valid_shape() {
        // Reduced configuration, same entry names and units as the full
        // `experiments bench` artifact: schema drift in the weighted file
        // shape fails the test suite even before CI's check-bench step.
        let weighted = crate::bench_weighted_gps::run_levels(&[40], 40, 20);
        validate_entries("BENCH_weighted_gps.json", &weighted).unwrap();
    }

    #[test]
    fn drf_bench_emits_a_valid_shape() {
        // Same guard for the DRF artifact: the dominant-share kernel
        // timing pair and its speedup must satisfy the schema.
        let drf = crate::bench_drf::run_levels(&[40], 40);
        validate_entries("BENCH_drf.json", &drf).unwrap();
    }

    #[test]
    fn validate_dir_requires_the_canonical_artifacts() {
        let dir = std::env::temp_dir().join("bench_schema_test_dir");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let write = |name: &str, entries: &[BenchEntry]| {
            faas_metrics::export::write_json(&dir.join(name), &entries.to_vec()).unwrap();
        };
        // Only one artifact present: the canonical-set check trips.
        write("BENCH_gps.json", &valid());
        let err = validate_dir(&dir).unwrap_err();
        assert!(err.contains("missing canonical artifact"), "{err}");
        for name in EXPECTED_ARTIFACTS {
            let mut entries = valid();
            if name.contains("replay") {
                entries.push(entry("x_c1000_calls_per_sec", 2.5e6, "calls/s"));
            }
            write(name, &entries);
        }
        let seen = validate_dir(&dir).unwrap();
        assert_eq!(seen.len(), EXPECTED_ARTIFACTS.len());
        // The append-only history shares the BENCH_ prefix but is not an
        // entry list; it must be skipped, not rejected.
        std::fs::write(
            dir.join(crate::bench_history::HISTORY_FILE),
            "{\"version\": 1, \"lastUpdate\": \"\", \"entries\": {}}",
        )
        .unwrap();
        let seen = validate_dir(&dir).unwrap();
        assert_eq!(seen.len(), EXPECTED_ARTIFACTS.len());
        // A malformed artifact fails the whole directory.
        std::fs::write(dir.join("BENCH_broken.json"), "{not json").unwrap();
        let err = validate_dir(&dir).unwrap_err();
        assert!(err.contains("BENCH_broken.json"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
