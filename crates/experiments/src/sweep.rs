//! `experiments sweep`: cross arrival process × function mix × scheduling
//! policy — the scenario-diversity experiment the workload subsystem
//! unlocks.
//!
//! The paper evaluates its policies under exactly one load shape (uniform
//! burst, equal split). The sweep replays the *same* mean load through
//! every combination of the subsystem's axes — uniform / Poisson / MMPP /
//! diurnal arrivals against equal / fairness / Zipf popularity — under each
//! strategy, and reports response-time and stretch statistics next to a
//! per-combination sim-health view (calls generated, peak pending queue,
//! peak live event-heap size).

use crate::grid::mode_for;
use crate::Effort;
use faas_invoker::{simulate_calls, NodeConfig};
use faas_metrics::compare::Strategy;
use faas_metrics::summary::{response_times_into, stretches_into, MetricSummary};
use faas_metrics::table::{fmt_secs, TextTable};
use faas_simcore::rng::Xoshiro256;
use faas_simcore::time::SimDuration;
use faas_workload::arrival::ArrivalSpec;
use faas_workload::generate::WorkloadSpec;
use faas_workload::mix::MixSpec;
use faas_workload::scenario::warmup_for_spec;
use faas_workload::sebs::Catalogue;
use faas_workload::trace::CallOutcome;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Stream tag for sweep release times.
const STREAM_TIMES: u64 = 0x5EE1;
/// Stream tag for sweep function assignment.
const STREAM_ASSIGN: u64 = 0x5EE2;

/// One (arrival, mix, strategy) combination, pooled over seeds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepRow {
    /// Arrival-process label.
    pub arrival: String,
    /// Function-mix label.
    pub mix: String,
    /// Scheduling strategy.
    pub strategy: Strategy,
    /// Measured calls pooled over all seeds.
    pub calls: usize,
    /// Response-time statistics, seconds.
    pub response: MetricSummary,
    /// Stretch statistics.
    pub stretch: MetricSummary,
    /// Measured-phase cold starts, summed over seeds.
    pub cold_starts: usize,
    /// Sim health: largest pending-queue length over the seeds.
    pub peak_queue: usize,
    /// Sim health: largest live event-heap size over the seeds.
    pub peak_events: usize,
}

/// The sweep result set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepResult {
    /// Cores per node used by every run.
    pub cores: u32,
    /// Intensity-equivalent load (the mean call count matches the paper's
    /// `1.1 · cores · intensity` burst).
    pub intensity: u32,
    /// All rows, ordered by (arrival, mix, strategy order).
    pub rows: Vec<SweepRow>,
}

impl SweepResult {
    /// Look up one row.
    pub fn row(&self, arrival: &str, mix: &str, strategy: Strategy) -> Option<&SweepRow> {
        self.rows
            .iter()
            .find(|r| r.arrival == arrival && r.mix == mix && r.strategy == strategy)
    }
}

/// The arrival axis: same mean load (`count` calls over `window`), four
/// shapes.
fn arrival_axis(count: usize, window: SimDuration, quick: bool) -> Vec<ArrivalSpec> {
    let rate = count as f64 / window.as_secs_f64();
    let mut axis = vec![
        ArrivalSpec::Uniform { count },
        ArrivalSpec::Poisson { rate },
    ];
    if !quick {
        axis.push(ArrivalSpec::Mmpp {
            // On-off bursts averaging `rate`: 1.8x/0.2x with equal 8 s
            // sojourns.
            rate_on: 1.8 * rate,
            rate_off: 0.2 * rate,
            mean_on_secs: 8.0,
            mean_off_secs: 8.0,
        });
        axis.push(ArrivalSpec::Diurnal {
            mean_rate: rate,
            weights: vec![0.25, 0.5, 1.0, 1.75, 1.75, 1.25, 0.75, 0.75],
        });
    }
    axis
}

/// The mix axis.
fn mix_axis(quick: bool) -> Vec<MixSpec> {
    let mut axis = vec![MixSpec::Equal, MixSpec::Zipf { s: 1.2 }];
    if !quick {
        axis.push(MixSpec::Fairness {
            rare_function: "dna-visualisation".into(),
            rare_calls: 10,
        });
    }
    axis
}

/// The strategy axis: the paper's headline comparison plus the strongest
/// size-based policy.
fn strategy_axis(quick: bool) -> Vec<Strategy> {
    if quick {
        vec![Strategy::Baseline, Strategy::Fc]
    } else {
        vec![
            Strategy::Baseline,
            Strategy::Fifo,
            Strategy::Sept,
            Strategy::Fc,
        ]
    }
}

/// Run the sweep.
pub fn run(effort: Effort) -> SweepResult {
    let catalogue = Catalogue::sebs();
    // Both modes keep the paper's 10-core node at an intensity where
    // scheduling matters; the full sweep runs the stressed regime.
    let (cores, intensity) = if effort.quick { (10, 60) } else { (10, 90) };
    let window = SimDuration::from_secs(60);
    let count = catalogue.len() * cores as usize * intensity as usize / 10;
    let seeds = effort.seed_set();

    let arrivals = arrival_axis(count, window, effort.quick);
    let mixes = mix_axis(effort.quick);
    let strategies = strategy_axis(effort.quick);

    let tasks: Vec<(&ArrivalSpec, &MixSpec, Strategy, u64)> = arrivals
        .iter()
        .flat_map(|a| {
            mixes.iter().flat_map({
                let strategies = &strategies;
                move |m| {
                    strategies
                        .iter()
                        .flat_map(move |&s| seeds.iter().map(move |&seed| (a, m, s, seed)))
                }
            })
        })
        .collect();

    struct TaskOut {
        arrival: String,
        mix: String,
        strategy: Strategy,
        outcomes: Vec<CallOutcome>,
        cold_starts: usize,
        peak_queue: usize,
        peak_events: usize,
    }

    let outputs: Vec<TaskOut> = tasks
        .par_iter()
        .map(|&(arrival, mix, strategy, seed)| {
            let spec = WorkloadSpec {
                arrival: arrival.clone(),
                mix: mix.clone(),
                window,
            };
            let mut root = Xoshiro256::seed_from_u64(seed);
            let mut rng_times = root.derive_stream(STREAM_TIMES);
            let mut rng_assign = root.derive_stream(STREAM_ASSIGN);
            let (mut calls, burst_start) = warmup_for_spec(&catalogue, cores);
            calls.extend(spec.generate_sorted(
                &catalogue,
                burst_start,
                &mut rng_times,
                &mut rng_assign,
                calls.len() as u32,
            ));
            let result = simulate_calls(
                &catalogue,
                &calls,
                &mode_for(strategy),
                &NodeConfig::paper(cores),
                seed,
                0,
            );
            TaskOut {
                arrival: spec.arrival.label(),
                mix: spec.mix.label(&catalogue),
                strategy,
                cold_starts: result.measured_cold_starts(),
                peak_queue: result.peak_queue,
                peak_events: result.peak_events,
                outcomes: result.measured().copied().collect(),
            }
        })
        .collect();

    // Reduce over seeds with reused scratch buffers.
    let mut rows = Vec::new();
    let mut refs: Vec<&CallOutcome> = Vec::new();
    let mut resp_scratch: Vec<f64> = Vec::new();
    let mut stretch_scratch: Vec<f64> = Vec::new();
    for arrival in &arrivals {
        for mix in &mixes {
            for &strategy in &strategies {
                let a_label = arrival.label();
                let m_label = mix.label(&catalogue);
                let mut pooled_resp: Vec<f64> = Vec::new();
                let mut pooled_stretch: Vec<f64> = Vec::new();
                let mut cold_starts = 0;
                let mut peak_queue = 0;
                let mut peak_events = 0;
                for out in outputs
                    .iter()
                    .filter(|o| o.arrival == a_label && o.mix == m_label && o.strategy == strategy)
                {
                    refs.clear();
                    refs.extend(out.outcomes.iter());
                    response_times_into(&refs, &mut resp_scratch);
                    stretches_into(&refs, &catalogue, &mut stretch_scratch);
                    pooled_resp.extend_from_slice(&resp_scratch);
                    pooled_stretch.extend_from_slice(&stretch_scratch);
                    cold_starts += out.cold_starts;
                    peak_queue = peak_queue.max(out.peak_queue);
                    peak_events = peak_events.max(out.peak_events);
                }
                rows.push(SweepRow {
                    arrival: a_label,
                    mix: m_label,
                    strategy,
                    calls: pooled_resp.len(),
                    response: MetricSummary::from_values(&pooled_resp),
                    stretch: MetricSummary::from_values(&pooled_stretch),
                    cold_starts,
                    peak_queue,
                    peak_events,
                });
            }
        }
    }
    SweepResult {
        cores,
        intensity,
        rows,
    }
}

/// Render the sweep comparison table.
pub fn render(result: &SweepResult) -> String {
    let mut t = TextTable::new([
        "arrival/mix/strategy",
        "calls",
        "R avg",
        "R p50",
        "R p95",
        "S avg",
        "cold",
        "peakQ",
        "peakEv",
    ]);
    for r in &result.rows {
        t.row([
            format!("{}/{}/{}", r.arrival, r.mix, r.strategy.name()),
            r.calls.to_string(),
            fmt_secs(r.response.mean),
            fmt_secs(r.response.p50),
            fmt_secs(r.response.p95),
            fmt_secs(r.stretch.mean),
            r.cold_starts.to_string(),
            r.peak_queue.to_string(),
            r.peak_events.to_string(),
        ]);
    }
    format!(
        "Workload sweep: arrival x mix x strategy at {} cores, intensity-equivalent {}\n{}",
        result.cores,
        result.intensity,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> SweepResult {
        run(Effort {
            seeds: 1,
            quick: true,
        })
    }

    #[test]
    fn quick_sweep_covers_the_reduced_axes() {
        let r = quick();
        // 2 arrivals x 2 mixes x 2 strategies.
        assert_eq!(r.rows.len(), 8);
        assert!(r.row("uniform", "equal", Strategy::Baseline).is_some());
        assert!(r.row("poisson", "zipf1.2", Strategy::Fc).is_some());
    }

    #[test]
    fn uniform_equal_count_matches_paper_formula() {
        let r = quick();
        let row = r.row("uniform", "equal", Strategy::Fc).unwrap();
        // 10 cores, intensity 60: 1.1 * 10 * 60 = 660 calls, 1 seed.
        assert_eq!(row.calls, 660);
    }

    #[test]
    fn fc_beats_baseline_across_shapes() {
        let r = quick();
        for arrival in ["uniform", "poisson"] {
            let fc = r.row(arrival, "equal", Strategy::Fc).unwrap();
            let base = r.row(arrival, "equal", Strategy::Baseline).unwrap();
            assert!(
                fc.response.mean <= base.response.mean,
                "{arrival}: FC {} vs baseline {}",
                fc.response.mean,
                base.response.mean
            );
        }
    }

    #[test]
    fn sim_health_is_populated() {
        let r = quick();
        for row in &r.rows {
            assert!(
                row.peak_events > 0,
                "{}/{} peak_events",
                row.arrival,
                row.mix
            );
            assert!(row.calls > 0);
        }
    }

    #[test]
    fn render_contains_health_columns() {
        let s = render(&quick());
        assert!(s.contains("peakQ") && s.contains("peakEv"));
        assert!(s.contains("uniform/equal/"));
    }
}
