//! `experiments sweep`: cross arrival process × function mix × container
//! weights × scheduling policy — the scenario-diversity experiment the
//! workload subsystem unlocks — plus a cluster-size sweep through the
//! streamed multi-node engine.
//!
//! The paper evaluates its policies under exactly one load shape (uniform
//! burst, equal split, uniform containers). The sweep replays the *same*
//! mean load through every combination of the subsystem's axes — uniform /
//! Poisson / MMPP / diurnal arrivals against equal / fairness / Zipf
//! popularity against uniform / tiered / Zipf-correlated container weights
//! — under each strategy, and reports response-time and stretch statistics
//! next to a per-combination sim-health view (calls generated, peak
//! pending queue, peak live event-heap size).
//!
//! The second table fixes the paper's §VIII total load and sweeps the
//! worker count through [`faas_cluster::run_cluster_streamed`] (each node
//! generating its own stride of the burst — the PR 3 follow-on), crossed
//! with the weighted-container axis.
//!
//! The trace table replays Azure-style synthetic traces — Zipf mean
//! rates, diurnal phase, MMPP bursts, correlated chains — through the
//! bounded-memory streamed trace engine
//! ([`faas_cluster::run_cluster_trace_streamed`]), putting a
//! recorded-workload-shaped scenario column next to the parametric axes
//! and reporting the ingestion working set per combination.
//!
//! The multi-resource table is the DRF-vs-single-resource comparison the
//! PR 10 refactor exists for: the fixed total load under the
//! memory-correlated tier model, routed by backlog- and dominant-share-
//! keyed policies through the per-node coupled entry point, reporting
//! per-resource utilization and the cross-node dominant-share Jain index
//! next to a single-resource (memory-unmodeled) control.

use crate::grid::mode_for;
use crate::Effort;
use faas_cluster::{
    run_cluster_streamed, run_cluster_streamed_coupled, run_cluster_streamed_coupled_per_node,
    run_cluster_trace_streamed, ClusterConfig, LoadBalancer,
};
use faas_invoker::{simulate_calls_faulted, simulate_calls_weighted, NodeConfig};
use faas_metrics::compare::Strategy;
use faas_metrics::summary::{
    response_times_into, stretches_into, FaultCounts, MetricSummary, ResourceSummary,
    ResourceUsage, RobustnessSummary,
};
use faas_metrics::table::{fmt_secs, TextTable};
use faas_simcore::rng::Xoshiro256;
use faas_simcore::time::{SimDuration, SimTime};
use faas_workload::arrival::ArrivalSpec;
use faas_workload::faults::FaultSpec;
use faas_workload::generate::WorkloadSpec;
use faas_workload::mix::MixSpec;
use faas_workload::scenario::{warmup_for_spec, warmup_waves};
use faas_workload::sebs::Catalogue;
use faas_workload::synth::{SynthSpec, SyntheticTrace};
use faas_workload::trace::CallOutcome;
use faas_workload::weight::{WeightSpec, WeightTable};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Stream tag for sweep release times.
const STREAM_TIMES: u64 = 0x5EE1;
/// Stream tag for sweep function assignment.
const STREAM_ASSIGN: u64 = 0x5EE2;

/// One (arrival, mix, weights, strategy) combination, pooled over seeds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepRow {
    /// Arrival-process label.
    pub arrival: String,
    /// Function-mix label.
    pub mix: String,
    /// Container-weight-model label.
    pub weights: String,
    /// Scheduling strategy.
    pub strategy: Strategy,
    /// Measured calls pooled over all seeds.
    pub calls: usize,
    /// Response-time statistics, seconds.
    pub response: MetricSummary,
    /// Stretch statistics.
    pub stretch: MetricSummary,
    /// Measured-phase cold starts, summed over seeds.
    pub cold_starts: usize,
    /// Sim health: largest pending-queue length over the seeds.
    pub peak_queue: usize,
    /// Sim health: largest live event-heap size over the seeds.
    pub peak_events: usize,
}

/// One (nodes, weights, strategy) cluster combination at the fixed §VIII
/// total load, pooled over seeds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterSweepRow {
    /// Worker count.
    pub nodes: u16,
    /// Container-weight-model label.
    pub weights: String,
    /// Scheduling strategy.
    pub strategy: Strategy,
    /// Measured calls pooled over all seeds.
    pub calls: usize,
    /// Response-time statistics, seconds.
    pub response: MetricSummary,
    /// Measured-phase cold starts, summed over seeds.
    pub cold_starts: usize,
    /// Sim health: largest live event-heap size over the seeds.
    pub peak_events: usize,
}

/// One (fault scenario, strategy) robustness combination, pooled over
/// seeds: the paper's uniform/equal burst replayed under a seeded fault
/// plan.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultSweepRow {
    /// Fault-scenario label.
    pub scenario: String,
    /// Scheduling strategy.
    pub strategy: Strategy,
    /// Goodput, drop rate, fault counters and the delivered p99.
    pub robustness: RobustnessSummary,
    /// Delivered response-time statistics (goodput latency), seconds.
    pub response: MetricSummary,
}

/// One (load balancer, strategy) row of the coupled robustness table: the
/// §VIII cluster under the strict crash preset, routed by a static or
/// feedback policy through the coupled engine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoupledSweepRow {
    /// Load-balancer label (`static-rr` is the no-feedback control).
    pub lb: String,
    /// Whether cross-node failover was enabled.
    pub failover: bool,
    /// Scheduling strategy.
    pub strategy: Strategy,
    /// Goodput, drop rate, fault counters (including failovers) and the
    /// delivered p99.
    pub robustness: RobustnessSummary,
    /// Delivered response-time statistics, seconds.
    pub response: MetricSummary,
}

/// One (resource configuration, strategy) row of the multi-resource
/// table: the §VIII fixed total load under the memory-correlated tier
/// model, routed by a backlog- or dominant-share-keyed policy, with the
/// per-resource utilization and cross-node dominant-share fairness the
/// DRF refactor makes observable. The `cpu-only` row is the
/// single-resource control (memory axis unmodeled — its utilization must
/// read zero).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResourceSweepRow {
    /// Configuration label (`cpu-only/jsq`, `mem/jsq`, `mem/jsd`).
    pub config: String,
    /// Scheduling strategy.
    pub strategy: Strategy,
    /// Measured calls pooled over all seeds.
    pub calls: usize,
    /// Response-time statistics, seconds.
    pub response: MetricSummary,
    /// Per-resource utilization and dominant-share fairness, pooled over
    /// seeds (served work and horizons summed before dividing).
    pub resource: ResourceSummary,
}

/// One (trace, strategy) row of the trace-replay table: a synthetic
/// Azure-style trace streamed through the bounded-memory trace engine,
/// pooled over seeds (each seed draws its own trace realization).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceSweepRow {
    /// Trace label (from [`SynthSpec::label`]).
    pub trace: String,
    /// Scheduling strategy.
    pub strategy: Strategy,
    /// Measured calls pooled over all seeds.
    pub calls: usize,
    /// Response-time statistics, seconds.
    pub response: MetricSummary,
    /// Cold starts, summed over seeds (traces run without warm-up, so
    /// every call is measured).
    pub cold_starts: usize,
    /// Sim health: largest ingestion working set (resident calls summed
    /// over nodes) of any seed — bounded by chunk × nodes regardless of
    /// trace length.
    pub peak_resident: u64,
    /// Sim health: largest live event-heap size over the seeds.
    pub peak_events: usize,
}

/// The sweep result set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepResult {
    /// Cores per node used by every run.
    pub cores: u32,
    /// Intensity-equivalent load (the mean call count matches the paper's
    /// `1.1 · cores · intensity` burst).
    pub intensity: u32,
    /// All single-node rows, ordered by (arrival, mix, weights, strategy).
    pub rows: Vec<SweepRow>,
    /// Cluster-size rows (streamed generation, fixed total load).
    pub cluster_rows: Vec<ClusterSweepRow>,
    /// Fault-scenario rows (robustness axis), ordered by
    /// (scenario, strategy).
    pub fault_rows: Vec<FaultSweepRow>,
    /// Coupled-engine robustness rows (LB-policy axis under the strict
    /// crash preset), ordered by (lb, strategy).
    pub coupled_rows: Vec<CoupledSweepRow>,
    /// Trace-replay rows (synthetic Azure-style traces through the
    /// streamed trace engine), ordered by (trace, strategy).
    pub trace_rows: Vec<TraceSweepRow>,
    /// Multi-resource rows (DRF vs single-resource control under the
    /// memory-correlated tiers), ordered by (config, strategy).
    pub resource_rows: Vec<ResourceSweepRow>,
}

impl SweepResult {
    /// Look up one single-node row.
    pub fn row(
        &self,
        arrival: &str,
        mix: &str,
        weights: &str,
        strategy: Strategy,
    ) -> Option<&SweepRow> {
        self.rows.iter().find(|r| {
            r.arrival == arrival && r.mix == mix && r.weights == weights && r.strategy == strategy
        })
    }

    /// Look up one cluster row.
    pub fn cluster_row(
        &self,
        nodes: u16,
        weights: &str,
        strategy: Strategy,
    ) -> Option<&ClusterSweepRow> {
        self.cluster_rows
            .iter()
            .find(|r| r.nodes == nodes && r.weights == weights && r.strategy == strategy)
    }

    /// Look up one fault-scenario row.
    pub fn fault_row(&self, scenario: &str, strategy: Strategy) -> Option<&FaultSweepRow> {
        self.fault_rows
            .iter()
            .find(|r| r.scenario == scenario && r.strategy == strategy)
    }

    /// Look up one coupled-engine robustness row.
    pub fn coupled_row(&self, lb: &str, strategy: Strategy) -> Option<&CoupledSweepRow> {
        self.coupled_rows
            .iter()
            .find(|r| r.lb == lb && r.strategy == strategy)
    }

    /// Look up one trace-replay row.
    pub fn trace_row(&self, trace: &str, strategy: Strategy) -> Option<&TraceSweepRow> {
        self.trace_rows
            .iter()
            .find(|r| r.trace == trace && r.strategy == strategy)
    }

    /// Look up one multi-resource row.
    pub fn resource_row(&self, config: &str, strategy: Strategy) -> Option<&ResourceSweepRow> {
        self.resource_rows
            .iter()
            .find(|r| r.config == config && r.strategy == strategy)
    }
}

/// The arrival axis: same mean load (`count` calls over `window`), four
/// shapes.
fn arrival_axis(count: usize, window: SimDuration, quick: bool) -> Vec<ArrivalSpec> {
    let rate = count as f64 / window.as_secs_f64();
    let mut axis = vec![
        ArrivalSpec::Uniform { count },
        ArrivalSpec::Poisson { rate },
    ];
    if !quick {
        axis.push(ArrivalSpec::Mmpp {
            // On-off bursts averaging `rate`: 1.8x/0.2x with equal 8 s
            // sojourns.
            rate_on: 1.8 * rate,
            rate_off: 0.2 * rate,
            mean_on_secs: 8.0,
            mean_off_secs: 8.0,
        });
        axis.push(ArrivalSpec::Diurnal {
            mean_rate: rate,
            weights: vec![0.25, 0.5, 1.0, 1.75, 1.75, 1.25, 0.75, 0.75],
        });
    }
    axis
}

/// The mix axis.
fn mix_axis(quick: bool) -> Vec<MixSpec> {
    let mut axis = vec![MixSpec::Equal, MixSpec::Zipf { s: 1.2 }];
    if !quick {
        axis.push(MixSpec::Fairness {
            rare_function: "dna-visualisation".into(),
            rare_calls: 10,
        });
    }
    axis
}

/// The weighted-container axis. The tiered model and its cgroup-lag
/// variant (warm-up cold starts initialise at the default share until the
/// cgroup update lands) ride along even in quick mode so the CI smoke run
/// covers both the weighted GPS path and the per-phase warm-up shares.
fn weight_axis(quick: bool) -> Vec<WeightSpec> {
    let mut axis = vec![
        WeightSpec::Uniform,
        WeightSpec::paper_tiers(),
        WeightSpec::paper_tiers_cgroup_lag(),
    ];
    if !quick {
        axis.push(WeightSpec::ZipfCorrelated { s: 1.0 });
    }
    axis
}

/// The strategy axis: the paper's headline comparison plus the strongest
/// size-based policy.
fn strategy_axis(quick: bool) -> Vec<Strategy> {
    if quick {
        vec![Strategy::Baseline, Strategy::Fc]
    } else {
        vec![
            Strategy::Baseline,
            Strategy::Fifo,
            Strategy::Sept,
            Strategy::Fc,
        ]
    }
}

/// Worker counts of the cluster-size sweep.
fn node_axis(quick: bool) -> Vec<u16> {
    if quick {
        vec![1, 2]
    } else {
        vec![1, 2, 4]
    }
}

/// The trace axis: Azure-style synthetic traces (Zipf mean rates,
/// diurnal phase, MMPP bursts, correlated chains) at two cluster-wide
/// mean rates over the §VIII window. The steady rate keeps the
/// [`TRACE_NODES`]-worker cluster comfortably inside capacity; the
/// stressed rate is where scheduling policy starts to matter.
fn trace_axis(window: SimDuration, quick: bool) -> Vec<SynthSpec> {
    let mut axis = vec![SynthSpec::azure(2.0, window)];
    if !quick {
        axis.push(SynthSpec::azure(6.0, window));
    }
    axis
}

/// Worker count of the trace-replay table.
const TRACE_NODES: u16 = 2;

/// Ingestion window of the trace-replay table: small enough that the
/// peak-resident column demonstrates the bounded working set, large
/// enough to amortize the windowed drain.
const TRACE_CHUNK: usize = 512;

/// Run the sweep.
pub fn run(effort: Effort) -> SweepResult {
    let catalogue = Catalogue::sebs();
    // Both modes keep the paper's 10-core node at an intensity where
    // scheduling matters; the full sweep runs the stressed regime.
    let (cores, intensity) = if effort.quick { (10, 60) } else { (10, 90) };
    let window = SimDuration::from_secs(60);
    let count = catalogue.len() * cores as usize * intensity as usize / 10;
    let seeds = effort.seed_set();

    let arrivals = arrival_axis(count, window, effort.quick);
    let mixes = mix_axis(effort.quick);
    let weight_specs = weight_axis(effort.quick);
    let strategies = strategy_axis(effort.quick);

    #[allow(clippy::type_complexity)]
    let tasks: Vec<(&ArrivalSpec, &MixSpec, &WeightSpec, Strategy, u64)> = arrivals
        .iter()
        .flat_map(|a| {
            mixes.iter().flat_map({
                let (weight_specs, strategies, seeds) = (&weight_specs, &strategies, &seeds);
                move |m| {
                    weight_specs.iter().flat_map(move |w| {
                        strategies
                            .iter()
                            .flat_map(move |&s| seeds.iter().map(move |&seed| (a, m, w, s, seed)))
                    })
                }
            })
        })
        .collect();

    struct TaskOut {
        arrival: String,
        mix: String,
        weights: String,
        strategy: Strategy,
        outcomes: Vec<CallOutcome>,
        cold_starts: usize,
        peak_queue: usize,
        peak_events: usize,
    }

    let outputs: Vec<TaskOut> = tasks
        .par_iter()
        .map(|&(arrival, mix, weights, strategy, seed)| {
            let spec = WorkloadSpec {
                arrival: arrival.clone(),
                mix: mix.clone(),
                weights: weights.clone(),
                window,
            };
            let weight_table = spec.weights.table(&catalogue);
            let mut root = Xoshiro256::seed_from_u64(seed);
            let mut rng_times = root.derive_stream(STREAM_TIMES);
            let mut rng_assign = root.derive_stream(STREAM_ASSIGN);
            let (mut calls, burst_start) = warmup_for_spec(&catalogue, cores);
            calls.extend(spec.generate_sorted(
                &catalogue,
                burst_start,
                &mut rng_times,
                &mut rng_assign,
                calls.len() as u64,
            ));
            let result = simulate_calls_weighted(
                &catalogue,
                &calls,
                &mode_for(strategy),
                &NodeConfig::paper(cores),
                &weight_table,
                seed,
                0,
            );
            TaskOut {
                arrival: spec.arrival.label(),
                mix: spec.mix.label(&catalogue),
                weights: spec.weights.label(),
                strategy,
                cold_starts: result.measured_cold_starts(),
                peak_queue: result.peak_queue,
                peak_events: result.peak_events,
                outcomes: result.measured().copied().collect(),
            }
        })
        .collect();

    // Reduce over seeds with reused scratch buffers.
    let mut rows = Vec::new();
    let mut refs: Vec<&CallOutcome> = Vec::new();
    let mut resp_scratch: Vec<f64> = Vec::new();
    let mut stretch_scratch: Vec<f64> = Vec::new();
    for arrival in &arrivals {
        for mix in &mixes {
            for weights in &weight_specs {
                for &strategy in &strategies {
                    let a_label = arrival.label();
                    let m_label = mix.label(&catalogue);
                    let w_label = weights.label();
                    let mut pooled_resp: Vec<f64> = Vec::new();
                    let mut pooled_stretch: Vec<f64> = Vec::new();
                    let mut cold_starts = 0;
                    let mut peak_queue = 0;
                    let mut peak_events = 0;
                    for out in outputs.iter().filter(|o| {
                        o.arrival == a_label
                            && o.mix == m_label
                            && o.weights == w_label
                            && o.strategy == strategy
                    }) {
                        refs.clear();
                        refs.extend(out.outcomes.iter());
                        response_times_into(&refs, &mut resp_scratch);
                        stretches_into(&refs, &catalogue, &mut stretch_scratch);
                        pooled_resp.extend_from_slice(&resp_scratch);
                        pooled_stretch.extend_from_slice(&stretch_scratch);
                        cold_starts += out.cold_starts;
                        peak_queue = peak_queue.max(out.peak_queue);
                        peak_events = peak_events.max(out.peak_events);
                    }
                    rows.push(SweepRow {
                        arrival: a_label,
                        mix: m_label,
                        weights: w_label,
                        strategy,
                        calls: pooled_resp.len(),
                        response: MetricSummary::from_values(&pooled_resp),
                        stretch: MetricSummary::from_values(&pooled_stretch),
                        cold_starts,
                        peak_queue,
                        peak_events,
                    });
                }
            }
        }
    }

    let cluster_rows = run_cluster_sweep(&catalogue, cores, intensity, window, effort);
    let fault_rows = run_fault_sweep(&catalogue, cores, intensity, window, effort);
    let coupled_rows = run_coupled_sweep(&catalogue, cores, intensity, window, effort);
    let trace_rows = run_trace_sweep(&catalogue, cores, window, effort);
    let resource_rows = run_resource_sweep(&catalogue, cores, intensity, window, effort);
    SweepResult {
        cores,
        intensity,
        rows,
        cluster_rows,
        fault_rows,
        coupled_rows,
        trace_rows,
        resource_rows,
    }
}

/// The fault-scenario axis: a fault-free control plus the three seeded
/// presets, anchored to the measured burst window.
fn fault_axis(seed: u64, burst_start: SimTime, window: SimDuration) -> Vec<(String, FaultSpec)> {
    vec![
        ("none".into(), FaultSpec::none()),
        (
            "degrade".into(),
            FaultSpec::degradation(seed, burst_start, window),
        ),
        (
            "crash".into(),
            FaultSpec::crash_restart(seed, burst_start, window),
        ),
        ("retry-storm".into(), FaultSpec::retry_storm(seed)),
    ]
}

/// The robustness sweep: the paper's uniform/equal burst replayed under
/// each fault scenario (see [`fault_axis`]) per strategy — goodput, drop
/// rate, retry cost and the delivered p99 next to the fault-free control.
fn run_fault_sweep(
    catalogue: &Catalogue,
    cores: u32,
    intensity: u32,
    window: SimDuration,
    effort: Effort,
) -> Vec<FaultSweepRow> {
    let count = catalogue.len() * cores as usize * intensity as usize / 10;
    // The robustness table compares regimes under stress, not the policy
    // grid: keep the paper's headline pair in both modes.
    let strategies = vec![Strategy::Baseline, Strategy::Fc];
    let seeds = effort.seed_set();
    let (_, burst_start) = warmup_for_spec(catalogue, cores);
    let scenario_labels: Vec<String> = fault_axis(0, burst_start, window)
        .into_iter()
        .map(|(label, _)| label)
        .collect();

    #[allow(clippy::type_complexity)]
    let tasks: Vec<(String, FaultSpec, Strategy, u64)> = seeds
        .iter()
        .flat_map(|&seed| {
            // The fault draws are seeded per run seed, so pooling over
            // seeds samples fault realizations too.
            let axis = fault_axis(seed ^ 0xFA17, burst_start, window);
            axis.into_iter().flat_map({
                let strategies = &strategies;
                move |(label, spec)| {
                    strategies
                        .iter()
                        .map(move |&s| (label.clone(), spec.clone(), s, seed))
                }
            })
        })
        .collect();

    struct FaultOut {
        scenario: String,
        strategy: Strategy,
        outcomes: Vec<CallOutcome>,
        dropped: usize,
        counts: FaultCounts,
    }

    let outputs: Vec<FaultOut> = tasks
        .par_iter()
        .map(|(label, faults, strategy, seed)| {
            let spec = WorkloadSpec {
                arrival: ArrivalSpec::Uniform { count },
                mix: MixSpec::Equal,
                weights: WeightSpec::Uniform,
                window,
            };
            let mut root = Xoshiro256::seed_from_u64(*seed);
            let mut rng_times = root.derive_stream(STREAM_TIMES);
            let mut rng_assign = root.derive_stream(STREAM_ASSIGN);
            let (mut calls, burst_start) = warmup_for_spec(catalogue, cores);
            let id_base = calls.len() as u64;
            calls.extend(spec.generate_sorted(
                catalogue,
                burst_start,
                &mut rng_times,
                &mut rng_assign,
                id_base,
            ));
            let result = simulate_calls_faulted(
                catalogue,
                &calls,
                &mode_for(*strategy),
                &NodeConfig::paper(cores),
                &WeightTable::uniform(catalogue.len()),
                faults,
                *seed,
                0,
            );
            let fs = result.fault_stats;
            FaultOut {
                scenario: label.clone(),
                strategy: *strategy,
                // Measured drops only: burst ids start at `id_base`.
                dropped: result.drops.iter().filter(|d| d.id.0 >= id_base).count(),
                counts: FaultCounts {
                    retries: fs.retries,
                    timeouts: fs.timeouts,
                    transient_failures: fs.transient_failures,
                    crashes: fs.crashes,
                    failovers: fs.failovers,
                },
                outcomes: result.measured().copied().collect(),
            }
        })
        .collect();

    let mut rows = Vec::new();
    for label in &scenario_labels {
        for &strategy in &strategies {
            let mut pooled: Vec<CallOutcome> = Vec::new();
            let mut dropped = 0;
            let mut counts = FaultCounts::default();
            for out in outputs
                .iter()
                .filter(|o| &o.scenario == label && o.strategy == strategy)
            {
                pooled.extend(out.outcomes.iter().copied());
                dropped += out.dropped;
                counts.retries += out.counts.retries;
                counts.timeouts += out.counts.timeouts;
                counts.transient_failures += out.counts.transient_failures;
                counts.crashes += out.counts.crashes;
                counts.failovers += out.counts.failovers;
            }
            let refs: Vec<&CallOutcome> = pooled.iter().collect();
            let mut resp = Vec::new();
            response_times_into(&refs, &mut resp);
            rows.push(FaultSweepRow {
                scenario: label.clone(),
                strategy,
                robustness: RobustnessSummary::from_outcomes(&refs, dropped, counts),
                response: MetricSummary::from_values(&resp),
            });
        }
    }
    rows
}

/// The cluster-size sweep: the paper's fixed-total-load design (§VIII)
/// through the streamed engine — every node generates its own stride of
/// the burst, no shared call vector — crossed with the weighted axis.
fn run_cluster_sweep(
    catalogue: &Catalogue,
    cores: u32,
    intensity: u32,
    window: SimDuration,
    effort: Effort,
) -> Vec<ClusterSweepRow> {
    let count = catalogue.len() * cores as usize * intensity as usize / 10;
    let node_counts = node_axis(effort.quick);
    let weight_specs = weight_axis(effort.quick);
    // The cluster table is about scaling, not the policy grid: keep the
    // paper's headline pair in both modes.
    let strategies = vec![Strategy::Baseline, Strategy::Fc];
    let seeds = effort.seed_set();

    #[allow(clippy::type_complexity)]
    let tasks: Vec<(u16, &WeightSpec, Strategy, u64)> = node_counts
        .iter()
        .flat_map(|&n| {
            weight_specs.iter().flat_map({
                let (strategies, seeds) = (&strategies, &seeds);
                move |w| {
                    strategies
                        .iter()
                        .flat_map(move |&s| seeds.iter().map(move |&seed| (n, w, s, seed)))
                }
            })
        })
        .collect();

    struct ClusterOut {
        nodes: u16,
        weights: String,
        strategy: Strategy,
        outcomes: Vec<CallOutcome>,
        cold_starts: usize,
        peak_events: usize,
    }

    // The node loop inside run_cluster_streamed already fans out on rayon;
    // run the configurations serially to keep peak memory flat.
    let outputs: Vec<ClusterOut> = tasks
        .iter()
        .map(|&(nodes, weights, strategy, seed)| {
            let spec = WorkloadSpec {
                arrival: ArrivalSpec::Uniform { count },
                mix: MixSpec::Equal,
                weights: weights.clone(),
                window,
            };
            let cfg = ClusterConfig::independent(
                nodes,
                NodeConfig::paper(cores),
                LoadBalancer::RoundRobin,
            );
            let result = run_cluster_streamed(
                catalogue,
                &spec,
                &mode_for(strategy),
                &cfg,
                seed,
                seed ^ 0xC1u64,
            );
            ClusterOut {
                nodes,
                weights: spec.weights.label(),
                strategy,
                cold_starts: result.measured_cold_starts(),
                peak_events: result.peak_events,
                outcomes: result.measured().copied().collect(),
            }
        })
        .collect();

    let mut rows = Vec::new();
    for &nodes in &node_counts {
        for weights in &weight_specs {
            for &strategy in &strategies {
                let w_label = weights.label();
                let mut pooled: Vec<f64> = Vec::new();
                let mut cold_starts = 0;
                let mut peak_events = 0;
                let mut calls = 0;
                for out in outputs
                    .iter()
                    .filter(|o| o.nodes == nodes && o.weights == w_label && o.strategy == strategy)
                {
                    pooled.extend(out.outcomes.iter().map(|o| o.response_time().as_secs_f64()));
                    calls += out.outcomes.len();
                    cold_starts += out.cold_starts;
                    peak_events = peak_events.max(out.peak_events);
                }
                rows.push(ClusterSweepRow {
                    nodes,
                    weights: w_label,
                    strategy,
                    calls,
                    response: MetricSummary::from_values(&pooled),
                    cold_starts,
                    peak_events,
                });
            }
        }
    }
    rows
}

/// The LB-policy axis of the coupled robustness table: the static
/// round-robin control (no feedback, no failover — the independent
/// engine's semantics) against the two feedback policies with cross-node
/// failover. LB seeds are derived per run seed so pooling over seeds
/// samples tie-break realizations too.
fn coupled_lb_axis(seed: u64) -> Vec<(String, LoadBalancer, bool)> {
    let lb_seed = seed ^ 0x1BA1;
    vec![
        ("static-rr".into(), LoadBalancer::RoundRobin, false),
        (
            "jsq".into(),
            LoadBalancer::JoinShortestQueue { seed: lb_seed },
            true,
        ),
        (
            "p2c".into(),
            LoadBalancer::PowerOfTwoChoices { seed: lb_seed },
            true,
        ),
    ]
}

/// Conservative-window width of the coupled sweep: a health-poll-scale
/// lookahead, wide enough to amortize barriers, narrow enough that the
/// balancers see a crashed node within a fraction of its outage.
const COUPLED_LOOKAHEAD: SimDuration = SimDuration::from_millis(250);

/// Worker count of the coupled robustness table (the acceptance bar asks
/// for the crash-failover story at 4+ nodes).
const COUPLED_NODES: u16 = 4;

/// The coupled-engine robustness sweep: the §VIII fixed total load on
/// [`COUPLED_NODES`] workers under [`FaultSpec::crash_strict`] — node 0
/// dies mid-burst while an impatient client times queued calls out — per
/// LB policy and strategy. Static round-robin keeps committing calls to
/// the dead node's shard and drops them; the feedback policies route
/// around the outage and fail killed attempts over, which is exactly the
/// goodput gap this table exists to show.
fn run_coupled_sweep(
    catalogue: &Catalogue,
    cores: u32,
    intensity: u32,
    window: SimDuration,
    effort: Effort,
) -> Vec<CoupledSweepRow> {
    let count = catalogue.len() * cores as usize * intensity as usize / 10;
    let strategies = vec![Strategy::Baseline, Strategy::Fc];
    let seeds = effort.seed_set();
    let (_, burst_start) = warmup_waves(catalogue);
    let lb_labels: Vec<(String, bool)> = coupled_lb_axis(0)
        .into_iter()
        .map(|(label, _, failover)| (label, failover))
        .collect();

    struct CoupledOut {
        lb: String,
        strategy: Strategy,
        outcomes: Vec<CallOutcome>,
        dropped: usize,
        counts: FaultCounts,
    }

    // The window loop inside the coupled engine already fans the nodes out
    // on rayon; run the configurations serially.
    let mut outputs: Vec<CoupledOut> = Vec::new();
    for &seed in seeds {
        for (label, lb, failover) in coupled_lb_axis(seed) {
            for &strategy in &strategies {
                let spec = WorkloadSpec {
                    arrival: ArrivalSpec::Uniform { count },
                    mix: MixSpec::Equal,
                    weights: WeightSpec::Uniform,
                    window,
                };
                let faults = FaultSpec::crash_strict(seed ^ 0xFA17, burst_start, window);
                let cfg = ClusterConfig::independent(COUPLED_NODES, NodeConfig::paper(cores), lb)
                    .coupled(COUPLED_LOOKAHEAD, failover);
                let result = run_cluster_streamed_coupled(
                    catalogue,
                    &spec,
                    &mode_for(strategy),
                    &cfg,
                    &faults,
                    seed,
                    seed ^ 0xC1u64,
                );
                let fs = result.fault_stats;
                outputs.push(CoupledOut {
                    lb: label.clone(),
                    strategy,
                    // Measured drops only: burst ids are below `count`
                    // (warmup ids start at the burst length).
                    dropped: result
                        .drops
                        .iter()
                        .filter(|d| (d.id.0 as usize) < count)
                        .count(),
                    counts: FaultCounts {
                        retries: fs.retries,
                        timeouts: fs.timeouts,
                        transient_failures: fs.transient_failures,
                        crashes: fs.crashes,
                        failovers: fs.failovers,
                    },
                    outcomes: result.measured().copied().collect(),
                });
            }
        }
    }

    let mut rows = Vec::new();
    for (label, failover) in &lb_labels {
        for &strategy in &strategies {
            let mut pooled: Vec<CallOutcome> = Vec::new();
            let mut dropped = 0;
            let mut counts = FaultCounts::default();
            for out in outputs
                .iter()
                .filter(|o| &o.lb == label && o.strategy == strategy)
            {
                pooled.extend(out.outcomes.iter().copied());
                dropped += out.dropped;
                counts.retries += out.counts.retries;
                counts.timeouts += out.counts.timeouts;
                counts.transient_failures += out.counts.transient_failures;
                counts.crashes += out.counts.crashes;
                counts.failovers += out.counts.failovers;
            }
            let refs: Vec<&CallOutcome> = pooled.iter().collect();
            let mut resp = Vec::new();
            response_times_into(&refs, &mut resp);
            rows.push(CoupledSweepRow {
                lb: label.clone(),
                failover: *failover,
                strategy,
                robustness: RobustnessSummary::from_outcomes(&refs, dropped, counts),
                response: MetricSummary::from_values(&resp),
            });
        }
    }
    rows
}

/// The trace-replay sweep: each synthetic trace of [`trace_axis`]
/// streamed through [`run_cluster_trace_streamed`] on [`TRACE_NODES`]
/// workers with a [`TRACE_CHUNK`]-call ingestion window, per strategy.
/// The trace seed is derived per run seed, so pooling over seeds pools
/// over trace realizations of the same synthesizer spec; a trace is the
/// complete call log, so no warm-up is injected and every outcome is
/// measured.
fn run_trace_sweep(
    catalogue: &Catalogue,
    cores: u32,
    window: SimDuration,
    effort: Effort,
) -> Vec<TraceSweepRow> {
    let specs = trace_axis(window, effort.quick);
    let strategies = vec![Strategy::Baseline, Strategy::Fc];
    let seeds = effort.seed_set();

    #[allow(clippy::type_complexity)]
    let tasks: Vec<(&SynthSpec, Strategy, u64)> = specs
        .iter()
        .flat_map(|spec| {
            let seeds = &seeds;
            strategies
                .iter()
                .flat_map(move |&s| seeds.iter().map(move |&seed| (spec, s, seed)))
        })
        .collect();

    struct TraceOut {
        trace: String,
        strategy: Strategy,
        outcomes: Vec<CallOutcome>,
        cold_starts: usize,
        peak_resident: u64,
        peak_events: usize,
    }

    // The node loop inside run_cluster_trace_streamed already fans out on
    // rayon; run the configurations serially to keep peak memory flat.
    let outputs: Vec<TraceOut> = tasks
        .iter()
        .map(|&(spec, strategy, seed)| {
            let trace = SyntheticTrace::new(spec, catalogue, SimTime::ZERO, seed ^ 0x7AC3);
            let cfg = ClusterConfig::independent(
                TRACE_NODES,
                NodeConfig::paper(cores),
                LoadBalancer::RoundRobin,
            );
            let result = run_cluster_trace_streamed(
                catalogue,
                &trace,
                &mode_for(strategy),
                &cfg,
                &FaultSpec::none(),
                seed ^ 0xC1u64,
                TRACE_CHUNK,
            );
            TraceOut {
                trace: spec.label(),
                strategy,
                cold_starts: result.measured_cold_starts(),
                peak_resident: result.peak_resident_calls,
                peak_events: result.peak_events,
                outcomes: result.measured().copied().collect(),
            }
        })
        .collect();

    let mut rows = Vec::new();
    for spec in &specs {
        for &strategy in &strategies {
            let label = spec.label();
            let mut pooled: Vec<f64> = Vec::new();
            let mut calls = 0;
            let mut cold_starts = 0;
            let mut peak_resident = 0;
            let mut peak_events = 0;
            for out in outputs
                .iter()
                .filter(|o| o.trace == label && o.strategy == strategy)
            {
                pooled.extend(out.outcomes.iter().map(|o| o.response_time().as_secs_f64()));
                calls += out.outcomes.len();
                cold_starts += out.cold_starts;
                peak_resident = peak_resident.max(out.peak_resident);
                peak_events = peak_events.max(out.peak_events);
            }
            rows.push(TraceSweepRow {
                trace: label,
                strategy,
                calls,
                response: MetricSummary::from_values(&pooled),
                cold_starts,
                peak_resident,
                peak_events,
            });
        }
    }
    rows
}

/// The resource-configuration axis of the multi-resource table: a
/// single-resource control (memory unmodeled, backlog-keyed JSQ — the
/// pre-DRF semantics), the same backlog routing with the memory axis
/// modeled, and dominant-share routing on the modeled axis. LB seeds are
/// derived per run seed so pooling over seeds samples tie-break
/// realizations too. The bool marks whether the memory axis is modeled.
fn resource_lb_axis(seed: u64) -> Vec<(String, LoadBalancer, bool)> {
    let lb_seed = seed ^ 0xD2F;
    vec![
        (
            "cpu-only/jsq".into(),
            LoadBalancer::JoinShortestQueue { seed: lb_seed },
            false,
        ),
        (
            "mem/jsq".into(),
            LoadBalancer::JoinShortestQueue { seed: lb_seed },
            true,
        ),
        (
            "mem/jsd".into(),
            LoadBalancer::JoinShortestDominant { seed: lb_seed },
            true,
        ),
    ]
}

/// Worker count of the multi-resource table.
const RESOURCE_NODES: u16 = 4;

/// Per-node memory-bandwidth capacity of the modeled rows, in bandwidth
/// units. Against the 10-core node and [`WeightSpec::paper_tiers_mem`]'s
/// demand profile (the popular 4x tier streams 2 bandwidth units per CPU
/// unit) this makes the memory axis the binding constraint for the
/// big-memory tier, so dominant shares genuinely diverge from backlogs.
const RESOURCE_MEM_BW: f64 = 8.0;

/// The multi-resource sweep: the §VIII fixed total load on
/// [`RESOURCE_NODES`] workers under the memory-correlated tier model,
/// per resource configuration (see [`resource_lb_axis`]) and strategy.
/// Runs through the per-node coupled entry point so each node's served
/// CPU/memory work is observable, then reduces to per-resource
/// utilization and the cross-node dominant-share fairness index: served
/// work and horizons are summed over seeds before dividing, so the pooled
/// utilization is the work-weighted mean of the per-seed ones.
fn run_resource_sweep(
    catalogue: &Catalogue,
    cores: u32,
    intensity: u32,
    window: SimDuration,
    effort: Effort,
) -> Vec<ResourceSweepRow> {
    let count = catalogue.len() * cores as usize * intensity as usize / 10;
    let strategies = vec![Strategy::Baseline, Strategy::Fc];
    let seeds = effort.seed_set();
    let labels: Vec<(String, bool)> = resource_lb_axis(0)
        .into_iter()
        .map(|(label, _, mem_modeled)| (label, mem_modeled))
        .collect();

    struct ResourceOut {
        config: String,
        strategy: Strategy,
        outcomes: Vec<CallOutcome>,
        usages: Vec<ResourceUsage>,
        horizon_secs: f64,
    }

    // The window loop inside the coupled engine already fans the nodes out
    // on rayon; run the configurations serially.
    let mut outputs: Vec<ResourceOut> = Vec::new();
    for &seed in seeds {
        for (label, lb, mem_modeled) in resource_lb_axis(seed) {
            for &strategy in &strategies {
                let spec = WorkloadSpec {
                    arrival: ArrivalSpec::Uniform { count },
                    mix: MixSpec::Equal,
                    weights: WeightSpec::paper_tiers_mem(),
                    window,
                };
                let node = if mem_modeled {
                    NodeConfig::paper(cores).with_mem_bandwidth(RESOURCE_MEM_BW)
                } else {
                    NodeConfig::paper(cores)
                };
                let cfg = ClusterConfig::independent(RESOURCE_NODES, node, lb)
                    .coupled(COUPLED_LOOKAHEAD, false);
                let per_node = run_cluster_streamed_coupled_per_node(
                    catalogue,
                    &spec,
                    &mode_for(strategy),
                    &cfg,
                    &FaultSpec::none(),
                    seed,
                    seed ^ 0xC1u64,
                );
                let horizon_secs = per_node
                    .iter()
                    .map(|r| r.last_completion)
                    .max()
                    .expect("at least one node")
                    .as_secs_f64();
                outputs.push(ResourceOut {
                    config: label.clone(),
                    strategy,
                    usages: per_node
                        .iter()
                        .map(|r| ResourceUsage {
                            cpu_secs: r.served_cpu_secs,
                            mem_units: r.served_mem_units,
                        })
                        .collect(),
                    horizon_secs,
                    outcomes: per_node
                        .iter()
                        .flat_map(|r| r.measured().copied())
                        .collect(),
                });
            }
        }
    }

    let mut rows = Vec::new();
    for (label, mem_modeled) in &labels {
        for &strategy in &strategies {
            let mut usages = vec![ResourceUsage::default(); RESOURCE_NODES as usize];
            let mut horizon_secs = 0.0;
            let mut resp: Vec<f64> = Vec::new();
            for out in outputs
                .iter()
                .filter(|o| &o.config == label && o.strategy == strategy)
            {
                for (acc, u) in usages.iter_mut().zip(&out.usages) {
                    acc.cpu_secs += u.cpu_secs;
                    acc.mem_units += u.mem_units;
                }
                horizon_secs += out.horizon_secs;
                resp.extend(out.outcomes.iter().map(|o| o.response_time().as_secs_f64()));
            }
            let mem_bandwidth = if *mem_modeled { RESOURCE_MEM_BW } else { 0.0 };
            rows.push(ResourceSweepRow {
                config: label.clone(),
                strategy,
                calls: resp.len(),
                response: MetricSummary::from_values(&resp),
                resource: ResourceSummary::from_usages(
                    &usages,
                    cores as f64,
                    mem_bandwidth,
                    horizon_secs,
                ),
            });
        }
    }
    rows
}

/// Render the sweep comparison tables.
pub fn render(result: &SweepResult) -> String {
    let mut t = TextTable::new([
        "arrival/mix/weights/strategy",
        "calls",
        "R avg",
        "R p50",
        "R p95",
        "S avg",
        "cold",
        "peakQ",
        "peakEv",
    ]);
    for r in &result.rows {
        t.row([
            format!(
                "{}/{}/{}/{}",
                r.arrival,
                r.mix,
                r.weights,
                r.strategy.name()
            ),
            r.calls.to_string(),
            fmt_secs(r.response.mean),
            fmt_secs(r.response.p50),
            fmt_secs(r.response.p95),
            fmt_secs(r.stretch.mean),
            r.cold_starts.to_string(),
            r.peak_queue.to_string(),
            r.peak_events.to_string(),
        ]);
    }
    let mut c = TextTable::new([
        "nodes/weights/strategy",
        "calls",
        "R avg",
        "R p50",
        "R p95",
        "cold",
        "peakEv",
    ]);
    for r in &result.cluster_rows {
        c.row([
            format!("{}/{}/{}", r.nodes, r.weights, r.strategy.name()),
            r.calls.to_string(),
            fmt_secs(r.response.mean),
            fmt_secs(r.response.p50),
            fmt_secs(r.response.p95),
            r.cold_starts.to_string(),
            r.peak_events.to_string(),
        ]);
    }
    let mut f = TextTable::new([
        "scenario/strategy",
        "served",
        "drop",
        "goodput",
        "retries",
        "t/o",
        "crash",
        "R p99",
    ]);
    for r in &result.fault_rows {
        f.row([
            format!("{}/{}", r.scenario, r.strategy.name()),
            r.robustness.delivered.to_string(),
            r.robustness.dropped.to_string(),
            format!("{:.4}", r.robustness.goodput),
            r.robustness.counts.retries.to_string(),
            r.robustness.counts.timeouts.to_string(),
            r.robustness.counts.crashes.to_string(),
            fmt_secs(r.robustness.p99_response),
        ]);
    }
    let mut cp = TextTable::new([
        "lb/strategy",
        "served",
        "drop",
        "goodput",
        "retries",
        "t/o",
        "failover",
        "R p99",
    ]);
    for r in &result.coupled_rows {
        cp.row([
            format!("{}/{}", r.lb, r.strategy.name()),
            r.robustness.delivered.to_string(),
            r.robustness.dropped.to_string(),
            format!("{:.4}", r.robustness.goodput),
            r.robustness.counts.retries.to_string(),
            r.robustness.counts.timeouts.to_string(),
            r.robustness.counts.failovers.to_string(),
            fmt_secs(r.robustness.p99_response),
        ]);
    }
    let mut tr = TextTable::new([
        "trace/strategy",
        "calls",
        "R avg",
        "R p50",
        "R p95",
        "cold",
        "peakRes",
        "peakEv",
    ]);
    for r in &result.trace_rows {
        tr.row([
            format!("{}/{}", r.trace, r.strategy.name()),
            r.calls.to_string(),
            fmt_secs(r.response.mean),
            fmt_secs(r.response.p50),
            fmt_secs(r.response.p95),
            r.cold_starts.to_string(),
            r.peak_resident.to_string(),
            r.peak_events.to_string(),
        ]);
    }
    let mut rs = TextTable::new([
        "config/strategy",
        "calls",
        "R avg",
        "R p95",
        "cpuUtil",
        "memUtil",
        "domMin",
        "domMax",
        "jain",
    ]);
    for r in &result.resource_rows {
        rs.row([
            format!("{}/{}", r.config, r.strategy.name()),
            r.calls.to_string(),
            fmt_secs(r.response.mean),
            fmt_secs(r.response.p95),
            format!("{:.3}", r.resource.cpu_utilization),
            format!("{:.3}", r.resource.mem_utilization),
            format!("{:.3}", r.resource.dominant_min),
            format!("{:.3}", r.resource.dominant_max),
            format!("{:.4}", r.resource.dominant_jain),
        ]);
    }
    format!(
        "Workload sweep: arrival x mix x weights x strategy at {} cores, \
         intensity-equivalent {}\n{}\n\
         Cluster-size sweep (streamed generation, fixed total load)\n{}\n\
         Fault-scenario sweep (robustness axis)\n{}\n\
         Coupled-engine robustness ({} nodes, strict crash preset, \
         lookahead {} ms)\n{}\n\
         Trace-replay sweep ({} nodes, streamed ingestion, chunk {})\n{}\n\
         Multi-resource sweep ({} nodes, mem bandwidth {} units, \
         memory-correlated tiers)\n{}",
        result.cores,
        result.intensity,
        t.render(),
        c.render(),
        f.render(),
        COUPLED_NODES,
        COUPLED_LOOKAHEAD.as_millis_f64(),
        cp.render(),
        TRACE_NODES,
        TRACE_CHUNK,
        tr.render(),
        RESOURCE_NODES,
        RESOURCE_MEM_BW,
        rs.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// The quick sweep is shared across tests: it runs 16 node sims plus 8
    /// cluster sims, so compute it once.
    fn quick() -> &'static SweepResult {
        static QUICK: OnceLock<SweepResult> = OnceLock::new();
        QUICK.get_or_init(|| {
            run(Effort {
                seeds: 1,
                quick: true,
            })
        })
    }

    /// Expected row count of each table, derived from the very axis lists
    /// the sweep crosses — adding an arrival shape, LB policy or fault
    /// scenario can't silently desynchronize the tests.
    fn expected_rows(quick: bool) -> usize {
        arrival_axis(1, SimDuration::from_secs(60), quick).len()
            * mix_axis(quick).len()
            * weight_axis(quick).len()
            * strategy_axis(quick).len()
    }

    fn expected_cluster_rows(quick: bool) -> usize {
        // The cluster and robustness tables fix the headline strategy pair.
        node_axis(quick).len() * weight_axis(quick).len() * 2
    }

    fn expected_fault_rows() -> usize {
        fault_axis(0, SimTime::ZERO, SimDuration::from_secs(60)).len() * 2
    }

    fn expected_coupled_rows() -> usize {
        coupled_lb_axis(0).len() * 2
    }

    fn expected_trace_rows(quick: bool) -> usize {
        trace_axis(SimDuration::from_secs(60), quick).len() * 2
    }

    fn expected_resource_rows() -> usize {
        resource_lb_axis(0).len() * 2
    }

    #[test]
    fn quick_sweep_covers_the_reduced_axes() {
        let r = quick();
        assert_eq!(r.rows.len(), expected_rows(true));
        assert!(r
            .row("uniform", "equal", "w-uniform", Strategy::Baseline)
            .is_some());
        assert!(r
            .row("poisson", "zipf1.2", "w-tiers3", Strategy::Fc)
            .is_some());
        assert!(r
            .row("uniform", "equal", "w-tiers3+wu-i1x1", Strategy::Baseline)
            .is_some());
    }

    #[test]
    fn uniform_equal_count_matches_paper_formula() {
        let r = quick();
        let row = r
            .row("uniform", "equal", "w-uniform", Strategy::Fc)
            .unwrap();
        // 10 cores, intensity 60: 1.1 * 10 * 60 = 660 calls, 1 seed.
        assert_eq!(row.calls, 660);
    }

    #[test]
    fn fc_beats_baseline_across_shapes() {
        let r = quick();
        for arrival in ["uniform", "poisson"] {
            let fc = r.row(arrival, "equal", "w-uniform", Strategy::Fc).unwrap();
            let base = r
                .row(arrival, "equal", "w-uniform", Strategy::Baseline)
                .unwrap();
            assert!(
                fc.response.mean <= base.response.mean,
                "{arrival}: FC {} vs baseline {}",
                fc.response.mean,
                base.response.mean
            );
        }
    }

    #[test]
    fn weighted_column_changes_the_baseline_but_not_the_paper_mode() {
        let r = quick();
        // Weights shape the baseline's GPS bank...
        let base_u = r
            .row("uniform", "equal", "w-uniform", Strategy::Baseline)
            .unwrap();
        let base_w = r
            .row("uniform", "equal", "w-tiers3", Strategy::Baseline)
            .unwrap();
        assert!(
            (base_u.response.mean - base_w.response.mean).abs() > 1e-9,
            "tiered weights must move the baseline means"
        );
        // ...and are inert under the paper's one-core-per-container regime.
        let fc_u = r
            .row("uniform", "equal", "w-uniform", Strategy::Fc)
            .unwrap();
        let fc_w = r.row("uniform", "equal", "w-tiers3", Strategy::Fc).unwrap();
        assert_eq!(fc_u.response.mean, fc_w.response.mean);
    }

    #[test]
    fn warmup_phase_column_is_present_and_sane() {
        let r = quick();
        let lagged = r
            .row("uniform", "equal", "w-tiers3+wu-i1x1", Strategy::Baseline)
            .unwrap();
        // The cgroup-lag column carries the full measured load and healthy
        // sim counters, like every other column.
        assert_eq!(lagged.calls, 660);
        assert!(lagged.peak_events > 0);
        // It only diverges from plain tiers through the warm-up phase, and
        // is inert under the paper's one-core-per-container regime.
        let fc_plain = r.row("uniform", "equal", "w-tiers3", Strategy::Fc).unwrap();
        let fc_lagged = r
            .row("uniform", "equal", "w-tiers3+wu-i1x1", Strategy::Fc)
            .unwrap();
        assert_eq!(fc_plain.response.mean, fc_lagged.response.mean);
    }

    #[test]
    fn cluster_sweep_covers_nodes_and_weights() {
        let r = quick();
        assert_eq!(r.cluster_rows.len(), expected_cluster_rows(true));
        for row in &r.cluster_rows {
            assert_eq!(row.calls, 660, "fixed total load on {} nodes", row.nodes);
        }
        let weighted = r.cluster_row(2, "w-tiers3", Strategy::Baseline).unwrap();
        assert!(weighted.peak_events > 0);
        // Fixed total load: two workers beat one for the same strategy.
        let one = r.cluster_row(1, "w-uniform", Strategy::Fc).unwrap();
        let two = r.cluster_row(2, "w-uniform", Strategy::Fc).unwrap();
        assert!(
            two.response.mean <= one.response.mean,
            "2 nodes ({}) must not lose to 1 node ({})",
            two.response.mean,
            one.response.mean
        );
    }

    #[test]
    fn fault_sweep_covers_scenarios_and_controls() {
        let r = quick();
        assert_eq!(r.fault_rows.len(), expected_fault_rows());
        // The fault-free control: full goodput, zero counters.
        for strategy in [Strategy::Baseline, Strategy::Fc] {
            let none = r.fault_row("none", strategy).unwrap();
            assert_eq!(none.robustness.goodput, 1.0);
            assert_eq!(none.robustness.dropped, 0);
            assert_eq!(none.robustness.counts, FaultCounts::default());
            assert_eq!(none.robustness.delivered, 660);
        }
    }

    #[test]
    fn degradation_raises_the_delivered_tail() {
        let r = quick();
        for strategy in [Strategy::Baseline, Strategy::Fc] {
            let none = r.fault_row("none", strategy).unwrap();
            let deg = r.fault_row("degrade", strategy).unwrap();
            assert_eq!(deg.robustness.dropped, 0, "degradation drops nothing");
            assert!(
                deg.robustness.p99_response >= none.robustness.p99_response,
                "{:?}: p99 {} under degradation vs {} clean",
                strategy,
                deg.robustness.p99_response,
                none.robustness.p99_response
            );
        }
    }

    #[test]
    fn crash_and_retry_storm_populate_fault_counters() {
        let r = quick();
        let crash = r.fault_row("crash", Strategy::Fc).unwrap();
        assert_eq!(crash.robustness.counts.crashes, 1, "one crash per seed");
        assert!(crash.robustness.counts.retries > 0);
        let storm = r.fault_row("retry-storm", Strategy::Baseline).unwrap();
        assert!(storm.robustness.counts.transient_failures > 0);
        assert!(storm.robustness.counts.retries > 0);
        assert!(
            storm.robustness.goodput > 0.9,
            "five attempts at 15% failure keep goodput near 1, got {}",
            storm.robustness.goodput
        );
        // Conservation surfaces in the summary arithmetic.
        for row in &r.fault_rows {
            let rb = &row.robustness;
            assert_eq!(rb.delivered + rb.dropped, 660);
            assert!((rb.goodput + rb.drop_rate - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn coupled_table_covers_the_lb_axis_and_conserves_calls() {
        let r = quick();
        assert_eq!(r.coupled_rows.len(), expected_coupled_rows());
        for row in &r.coupled_rows {
            let rb = &row.robustness;
            assert_eq!(
                rb.delivered + rb.dropped,
                660,
                "{}/{:?}: cluster call conservation",
                row.lb,
                row.strategy
            );
            assert_eq!(rb.counts.crashes, 1, "one crash per seed");
        }
        // The control row runs without failover, the feedback rows with.
        assert!(!r.coupled_row("static-rr", Strategy::Fc).unwrap().failover);
        assert!(r.coupled_row("jsq", Strategy::Fc).unwrap().failover);
    }

    #[test]
    fn feedback_routing_beats_static_round_robin_under_the_crash() {
        // The acceptance bar of the coupled engine: with node 0 down and
        // an impatient client, JSQ + failover must deliver measurably more
        // of the offered load than the static control, for both regimes.
        let r = quick();
        for strategy in [Strategy::Baseline, Strategy::Fc] {
            let rr = r.coupled_row("static-rr", strategy).unwrap();
            let jsq = r.coupled_row("jsq", strategy).unwrap();
            assert!(
                rr.robustness.dropped > 0,
                "{strategy:?}: the strict crash preset must hurt static RR"
            );
            assert!(
                jsq.robustness.goodput > rr.robustness.goodput,
                "{strategy:?}: JSQ goodput {} must beat static RR {}",
                jsq.robustness.goodput,
                rr.robustness.goodput
            );
            assert_eq!(
                rr.robustness.counts.failovers, 0,
                "no failover on the control row"
            );
        }
        // Failovers are structural under the queued regime: FairChoice
        // holds calls pending, so strict timeouts with retries left migrate
        // across nodes throughout the run. (Under the baseline's greedy
        // dispatch only in-flight kills at the crash instant migrate, which
        // can legitimately round to zero at light per-node load.)
        let jsq_fc = r.coupled_row("jsq", Strategy::Fc).unwrap();
        assert!(
            jsq_fc.robustness.counts.failovers > 0,
            "timed-out retries must hand off under JSQ/FC"
        );
    }

    #[test]
    fn trace_table_covers_the_axis_with_bounded_ingestion() {
        let r = quick();
        assert_eq!(r.trace_rows.len(), expected_trace_rows(true));
        let labels: Vec<String> = trace_axis(SimDuration::from_secs(60), true)
            .iter()
            .map(|s| s.label())
            .collect();
        for label in &labels {
            let base = r.trace_row(label, Strategy::Baseline).unwrap();
            let fc = r.trace_row(label, Strategy::Fc).unwrap();
            // The same trace feeds both strategies: identical call counts.
            assert_eq!(base.calls, fc.calls, "{label}: shared trace");
            assert!(base.calls > 0, "{label}: trace produced calls");
            for row in [base, fc] {
                assert!(row.peak_events > 0, "{label}: sim health populated");
                // The bounded-memory contract, end to end: the ingestion
                // working set never exceeds chunk × nodes.
                assert!(
                    row.peak_resident > 0
                        && row.peak_resident <= (TRACE_CHUNK * TRACE_NODES as usize) as u64,
                    "{label}: peak resident {} vs bound {}",
                    row.peak_resident,
                    TRACE_CHUNK * TRACE_NODES as usize
                );
            }
        }
    }

    #[test]
    fn resource_table_covers_the_axis_and_models_the_memory_column() {
        let r = quick();
        assert_eq!(r.resource_rows.len(), expected_resource_rows());
        for row in &r.resource_rows {
            // The fixed total load reaches every configuration.
            assert_eq!(row.calls, 660, "{}/{:?}", row.config, row.strategy);
            assert!(
                row.resource.cpu_utilization > 0.0 && row.resource.cpu_utilization <= 1.0,
                "{}: cpu utilization {} in (0, 1]",
                row.config,
                row.resource.cpu_utilization
            );
            assert!(
                row.resource.dominant_min <= row.resource.dominant_max,
                "{}: dominant share ordering",
                row.config
            );
            assert!(
                row.resource.dominant_jain > 0.0 && row.resource.dominant_jain <= 1.0,
                "{}: Jain index {} in (0, 1]",
                row.config,
                row.resource.dominant_jain
            );
        }
        for strategy in [Strategy::Baseline, Strategy::Fc] {
            // The single-resource control: memory axis unmodeled, so its
            // utilization reads zero and the dominant axis is the CPU one.
            let control = r.resource_row("cpu-only/jsq", strategy).unwrap();
            assert_eq!(control.resource.mem_utilization, 0.0);
            // The modeled rows observe genuine bandwidth consumption: the
            // memory-correlated tiers demand it on two of three tiers.
            for config in ["mem/jsq", "mem/jsd"] {
                let row = r.resource_row(config, strategy).unwrap();
                assert!(
                    row.resource.mem_utilization > 0.0,
                    "{config}/{strategy:?}: modeled memory axis must be consumed"
                );
            }
        }
    }

    #[test]
    fn modeling_the_memory_axis_slows_the_bandwidth_hungry_tier() {
        // The single-resource control pretends bandwidth is free; once the
        // axis is modeled the big-memory tier competes for 8 units/node
        // and response times cannot improve.
        let r = quick();
        for strategy in [Strategy::Baseline, Strategy::Fc] {
            let control = r.resource_row("cpu-only/jsq", strategy).unwrap();
            let modeled = r.resource_row("mem/jsq", strategy).unwrap();
            assert!(
                modeled.response.mean >= control.response.mean,
                "{strategy:?}: modeled memory contention ({}) must not beat \
                 the unmodeled control ({})",
                modeled.response.mean,
                control.response.mean
            );
        }
    }

    #[test]
    fn sim_health_is_populated() {
        let r = quick();
        for row in &r.rows {
            assert!(
                row.peak_events > 0,
                "{}/{} peak_events",
                row.arrival,
                row.mix
            );
            assert!(row.calls > 0);
        }
    }

    #[test]
    fn render_contains_health_and_weight_columns() {
        let s = render(quick());
        assert!(s.contains("peakQ") && s.contains("peakEv"));
        assert!(s.contains("uniform/equal/w-uniform/"));
        assert!(s.contains("w-tiers3"), "weighted column rendered");
        assert!(s.contains("Cluster-size sweep"));
        assert!(s.contains("Fault-scenario sweep"));
        assert!(s.contains("goodput") && s.contains("retry-storm/"));
        assert!(s.contains("Coupled-engine robustness"));
        assert!(s.contains("static-rr/") && s.contains("jsq/") && s.contains("failover"));
        assert!(s.contains("Trace-replay sweep"));
        assert!(s.contains("synth(") && s.contains("peakRes"));
        assert!(s.contains("Multi-resource sweep"));
        assert!(s.contains("cpu-only/jsq/") && s.contains("mem/jsd/") && s.contains("jain"));
    }
}
