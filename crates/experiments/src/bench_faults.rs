//! Dynamic-capacity trajectory: `experiments bench` → `BENCH_faults.json`.
//!
//! Times the fault subsystem's hot path — capacity events landing on a
//! loaded GPS bank — at two layers:
//!
//! * **Kernel**: [`faas_cpu::bench_support::run_capacity_churn`] runs the
//!   weighted completion-driven churn loop with a `set_capacity` resize
//!   every few events (the shape of a degradation ramp). The production
//!   kernel re-anchors its virtual clocks in O(log n) per resize; the
//!   seed integrator re-deplets every task slot, so the pair yields the
//!   usual incremental/reference/speedup trajectory per task level.
//! * **Node**: one full baseline-node simulation under the
//!   [`FaultSpec::degradation`] preset next to the identical fault-free
//!   run — the end-to-end price of fault injection (timeline merge,
//!   per-call fault state, capacity reschedules) on a real scenario.
//!
//! The thread/core count is recorded alongside so trajectory points from
//! different machines stay comparable.

use faas_cpu::bench_support::run_capacity_churn;
use faas_cpu::{GpsCpu, ReferenceGpsCpu};
use faas_invoker::baseline;
use faas_invoker::NodeConfig;
use faas_simcore::time::SimDuration;
use faas_workload::faults::FaultSpec;
use faas_workload::scenario::BurstScenario;
use faas_workload::sebs::Catalogue;
use faas_workload::weight::WeightTable;

pub use crate::bench_gps::BenchEntry;

/// Task-count levels of the kernel workload.
const CHURN_TASKS: [usize; 3] = [100, 1_000, 10_000];
/// Completion events per kernel run.
const CHURN_COMPLETIONS: usize = 1_000;
/// A capacity resize lands every this many completion events.
const RESIZE_EVERY: usize = 4;
/// Node-level workload shape (the paper's 10-core node, stressed burst).
const NODE_CORES: u32 = 10;
const NODE_INTENSITY: u32 = 60;
const SAMPLES: usize = 5;

/// Run the dynamic-capacity benchmarks at the standard levels.
pub fn run() -> Vec<BenchEntry> {
    run_levels(&CHURN_TASKS, CHURN_COMPLETIONS, NODE_INTENSITY)
}

/// Run the benchmarks at explicit levels (the unit test uses a reduced
/// configuration; `experiments bench` the full one).
pub fn run_levels(
    task_levels: &[usize],
    completions: usize,
    node_intensity: u32,
) -> Vec<BenchEntry> {
    let mut entries = Vec::new();
    for &tasks in task_levels {
        let params = faas_cpu::bench_support::weighted_churn_params(tasks);
        let incremental = crate::median_ns(SAMPLES, || {
            let mut kernel = GpsCpu::new(params);
            run_capacity_churn(&mut kernel, tasks, completions, RESIZE_EVERY)
        });
        let reference = crate::median_ns(SAMPLES, || {
            let mut kernel = ReferenceGpsCpu::new(params);
            run_capacity_churn(&mut kernel, tasks, completions, RESIZE_EVERY)
        });
        entries.push(BenchEntry {
            name: format!("faults_capacity_churn_n{tasks}_incremental"),
            value: incremental,
            unit: "ns/iter".into(),
        });
        entries.push(BenchEntry {
            name: format!("faults_capacity_churn_n{tasks}_reference"),
            value: reference,
            unit: "ns/iter".into(),
        });
        entries.push(BenchEntry {
            name: format!("faults_capacity_churn_n{tasks}_speedup"),
            value: reference / incremental,
            unit: "x".into(),
        });
    }

    // End-to-end: the degradation preset against the identical fault-free
    // run on the paper's baseline node.
    let catalogue = Catalogue::sebs();
    let scenario = BurstScenario::standard(NODE_CORES, node_intensity).generate(&catalogue, 42);
    let calls = scenario.all_calls();
    let cfg = NodeConfig::paper(NODE_CORES);
    let weights = WeightTable::uniform(catalogue.len());
    let faults = FaultSpec::degradation(42, scenario.burst_start, SimDuration::from_secs(60));
    let clean = crate::median_ns(SAMPLES, || {
        let r = baseline::simulate(&catalogue, &calls, &cfg, 42, 0);
        r.outcomes.len() as f64
    });
    let degraded = crate::median_ns(SAMPLES, || {
        let r = baseline::simulate_faulted(&catalogue, &calls, &cfg, &weights, &faults, 42, 0);
        r.outcomes.len() as f64
    });
    entries.push(BenchEntry {
        name: format!("faults_node_c{NODE_CORES}_v{node_intensity}_clean"),
        value: clean / 1e6,
        unit: "ms/run".into(),
    });
    entries.push(BenchEntry {
        name: format!("faults_node_c{NODE_CORES}_v{node_intensity}_degraded"),
        value: degraded / 1e6,
        unit: "ms/run".into(),
    });

    // The workloads are single-threaded; the machine's parallelism is
    // recorded so trajectory points are attributable to their host shape.
    entries.push(BenchEntry {
        name: "faults_threads".into(),
        value: crate::bench_gps::host_threads(),
        unit: "count".into(),
    });
    entries
}

/// Human-readable rendering of the entries.
pub fn render(entries: &[BenchEntry]) -> String {
    let mut out =
        String::from("Dynamic-capacity benchmarks (incremental set_capacity vs O(n) refresh)\n");
    for e in entries {
        out.push_str(&format!("  {:<44} {:>14.1} {}\n", e.name, e.value, e.unit));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_entries_for_every_level_plus_node_pair_and_threads() {
        // Smoke-check the shape on a reduced configuration (timings are
        // environment-dependent and debug builds are slow at 10^4 tasks).
        let entries = run_levels(&[50, 200], 100, 10);
        assert_eq!(entries.len(), 2 * 3 + 2 + 1);
        for e in &entries {
            assert!(e.value > 0.0, "{} must be positive", e.name);
        }
        assert!(entries.iter().any(|e| e.name == "faults_threads"));
        assert!(entries
            .iter()
            .any(|e| e.name == "faults_capacity_churn_n200_speedup" && e.unit == "x"));
        assert!(entries
            .iter()
            .any(|e| e.name == "faults_node_c10_v10_degraded" && e.unit == "ms/run"));
    }

    #[test]
    fn full_levels_include_the_acceptance_workload() {
        assert!(CHURN_TASKS.contains(&10_000));
    }
}
