//! Custom single-configuration runs with per-call trace export.
//!
//! `experiments run --cores C --intensity V --policy P [--seed S]` runs one
//! burst, prints the summary, and writes the full per-call trace as CSV —
//! the raw material for custom plots beyond the paper's figures.

use faas_core::{Policy, SchedulerConfig};
use faas_invoker::{simulate_scenario, NodeConfig, NodeMode, NodeResult};
use faas_metrics::export::CsvWriter;
use faas_metrics::summary::RunSummary;
use faas_metrics::table::{fmt_secs, TextTable};
use faas_workload::scenario::{BurstScenario, Scenario};
use faas_workload::sebs::Catalogue;
use faas_workload::trace::CallOutcome;
use serde::{Deserialize, Serialize};

/// Parameters of a custom run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CustomRun {
    /// Action cores.
    pub cores: u32,
    /// Load intensity.
    pub intensity: u32,
    /// Strategy: `None` is the OpenWhisk baseline.
    pub policy: Option<Policy>,
    /// Seed for both the call sequence and the simulation.
    pub seed: u64,
}

impl CustomRun {
    /// Run the configuration, returning the scenario and node result.
    pub fn execute(&self, catalogue: &Catalogue) -> (Scenario, NodeResult) {
        let scenario =
            BurstScenario::standard(self.cores, self.intensity).generate(catalogue, self.seed);
        let mode = match self.policy {
            None => NodeMode::Baseline,
            Some(p) => NodeMode::Scheduled(SchedulerConfig::paper(p)),
        };
        let result = simulate_scenario(
            catalogue,
            &scenario,
            &mode,
            &NodeConfig::paper(self.cores),
            self.seed,
        );
        (scenario, result)
    }

    /// Label for output.
    pub fn label(&self) -> String {
        format!(
            "{}c/v{}/{}/seed{}",
            self.cores,
            self.intensity,
            self.policy.map(|p| p.name()).unwrap_or("baseline"),
            self.seed
        )
    }
}

/// The per-call trace as CSV (measured calls only).
pub fn trace_csv(catalogue: &Catalogue, scenario: &Scenario, result: &NodeResult) -> CsvWriter {
    let mut w = CsvWriter::new(&[
        "call_id",
        "function",
        "release_s",
        "invoker_receive_s",
        "exec_start_s",
        "exec_end_s",
        "completion_s",
        "response_s",
        "stretch",
        "processing_s",
        "start_kind",
        "node",
    ]);
    let anchor = scenario.burst_start;
    for o in result.measured() {
        let spec = catalogue.spec(o.func);
        let rel = |t: faas_simcore::time::SimTime| {
            format!("{:.6}", t.saturating_since(anchor).as_secs_f64())
        };
        w.row([
            o.id.0.to_string(),
            spec.name.to_string(),
            rel(o.release),
            rel(o.invoker_receive),
            rel(o.exec_start),
            rel(o.exec_end),
            rel(o.completion),
            format!("{:.6}", o.response_time().as_secs_f64()),
            format!("{:.4}", o.stretch(spec.stretch_reference())),
            format!("{:.6}", o.processing.as_secs_f64()),
            format!("{:?}", o.start_kind),
            o.node.to_string(),
        ]);
    }
    w
}

/// Render the run summary.
pub fn render(
    catalogue: &Catalogue,
    run: &CustomRun,
    scenario: &Scenario,
    result: &NodeResult,
) -> String {
    let outcomes: Vec<&CallOutcome> = result.measured().collect();
    let summary = RunSummary::from_outcomes(&outcomes, catalogue, scenario.burst_start);
    let mut t = TextTable::new(["metric", "avg", "p50", "p75", "p95", "p99", "max"]);
    for (name, m) in [
        ("response (s)", summary.response),
        ("stretch", summary.stretch),
    ] {
        t.row([
            name.to_string(),
            fmt_secs(m.mean),
            fmt_secs(m.p50),
            fmt_secs(m.p75),
            fmt_secs(m.p95),
            fmt_secs(m.p99),
            fmt_secs(m.max),
        ]);
    }
    format!(
        "custom run {} — {} calls, max c(i) {}s, {} cold starts\n{}",
        run.label(),
        outcomes.len(),
        fmt_secs(summary.max_completion),
        result.measured_cold_starts(),
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn custom_run_produces_trace() {
        let catalogue = Catalogue::sebs();
        let run = CustomRun {
            cores: 5,
            intensity: 20,
            policy: Some(Policy::Sept),
            seed: 3,
        };
        let (scenario, result) = run.execute(&catalogue);
        let csv = trace_csv(&catalogue, &scenario, &result).to_string_lossy();
        let lines: Vec<&str> = csv.lines().collect();
        // Header plus one row per measured call.
        assert_eq!(lines.len(), 1 + scenario.measured_len());
        assert!(lines[0].starts_with("call_id,function,release_s"));
        // Every row parses into the right number of fields (no stray commas
        // from function names).
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), 12, "bad row: {line}");
        }
    }

    #[test]
    fn baseline_runs_without_policy() {
        let catalogue = Catalogue::sebs();
        let run = CustomRun {
            cores: 5,
            intensity: 20,
            policy: None,
            seed: 4,
        };
        let (scenario, result) = run.execute(&catalogue);
        assert_eq!(result.measured_len(), scenario.measured_len());
        assert_eq!(run.label(), "5c/v20/baseline/seed4");
    }

    #[test]
    fn render_mentions_both_metrics() {
        let catalogue = Catalogue::sebs();
        let run = CustomRun {
            cores: 5,
            intensity: 10,
            policy: Some(Policy::FairChoice),
            seed: 5,
        };
        let (scenario, result) = run.execute(&catalogue);
        let s = render(&catalogue, &run, &scenario, &result);
        assert!(s.contains("response (s)"));
        assert!(s.contains("stretch"));
        assert!(s.contains("FC"));
    }
}
