//! Trace-replay trajectory: `experiments replay` / `experiments bench` →
//! `BENCH_replay.json`.
//!
//! Times the bounded-memory trace ingestion subsystem end to end: an
//! Azure-style [`SyntheticTrace`] (calls derived lazily per index, never
//! materialized) replayed through
//! [`faas_cluster::run_cluster_trace_streamed`] on the paper's 4-node
//! cluster. Two feeds are compared on the identical trace:
//!
//! * **materialized** — `chunk = len`: every node pages its whole shard
//!   in one window, the replay analogue of generating a `Vec` up front;
//! * **streamed** — `chunk = 8192`: the bounded-memory windowed cursor,
//!   with `peak_resident_calls` recording the actual ingestion working
//!   set.
//!
//! The headline trajectory numbers are `calls_per_sec` at 10^6 and 10^7
//! calls (the scaling claim), plus the working-set proxy at 10^7. The
//! throughput points take the **best of several timed runs** (the
//! minimum wall-clock is the least scheduler-perturbed estimate) and
//! record the sample count as a `*_samples` entry, so the regression
//! gate compares like-for-like measurements instead of tripping on a
//! single noisy run. The 10^8-call point exists but is opt-in via
//! `BENCH_REPLAY_XL=1` — it holds ~10^8 outcome records and takes
//! minutes, which is beyond the default CI budget (it runs
//! single-sample, and says so in its `*_samples` entry).
//!
//! The synthesizer's mean rate is fixed at a sustainable per-cluster load
//! (the window scales with the call count instead), so queues stay
//! bounded and the wall-clock measures ingestion + simulation, not
//! pathological backlog churn.

use faas_cluster::{run_cluster_trace_streamed, ClusterConfig, LoadBalancer};
use faas_invoker::{NodeConfig, NodeMode, NodeResult};
use faas_simcore::time::{SimDuration, SimTime};
use faas_workload::faults::FaultSpec;
use faas_workload::sebs::Catalogue;
use faas_workload::synth::{SynthSpec, SyntheticTrace};
use faas_workload::trace_source::TraceSource;

pub use crate::bench_gps::BenchEntry;

/// Worker count of the benchmark cluster.
const NODES: u16 = 4;
/// Cores per node (the paper's node).
const CORES: u32 = 10;
/// Cluster-wide mean arrival rate (calls/s of simulated time). The
/// slowest SeBS function has an 8.5 s median, so 4 calls/s keeps even a
/// popularity order that favours it inside the 40-core capacity.
const MEAN_RATE: f64 = 4.0;
/// Ingestion window of the streamed feed.
const STREAM_CHUNK: usize = 8192;
const SAMPLES: usize = 3;
/// Timed runs per throughput point (best-of-N); the 10^8 XL point stays
/// single-sample because one run is already minutes-scale.
const THROUGHPUT_SAMPLES: usize = 3;

/// The synthetic benchmark trace for a target call count: the rate is
/// fixed, the simulated window grows with the count (a bigger slice of
/// the same day-like workload).
fn bench_trace(catalogue: &Catalogue, calls: u64) -> SyntheticTrace {
    let window = SimDuration::from_secs_f64(calls as f64 / MEAN_RATE);
    SyntheticTrace::new(
        &SynthSpec::azure(MEAN_RATE, window),
        catalogue,
        SimTime::ZERO,
        0xEEA7,
    )
}

fn replay(catalogue: &Catalogue, trace: &SyntheticTrace, chunk: usize) -> NodeResult {
    let cfg = ClusterConfig::independent(NODES, NodeConfig::paper(CORES), LoadBalancer::RoundRobin);
    run_cluster_trace_streamed(
        catalogue,
        trace,
        &NodeMode::Baseline,
        &cfg,
        &FaultSpec::none(),
        11,
        chunk,
    )
}

/// Run the full trajectory: the materialized/streamed pair at 10^6 calls,
/// throughput at 10^7, and (with `BENCH_REPLAY_XL=1`) the 10^8 point.
pub fn run() -> Vec<BenchEntry> {
    let mut entries = run_level(1_000_000, SAMPLES);
    entries.extend(throughput_level(10_000_000, THROUGHPUT_SAMPLES));
    if std::env::var("BENCH_REPLAY_XL").as_deref() == Ok("1") {
        entries.extend(throughput_level(100_000_000, 1));
    }
    entries
}

/// The materialized-vs-streamed feed comparison at an explicit call count
/// (the unit test uses a reduced one; `experiments bench` 10^6).
pub fn run_level(calls: u64, samples: usize) -> Vec<BenchEntry> {
    let catalogue = Catalogue::sebs();
    let trace = bench_trace(&catalogue, calls);
    let n = trace.len();

    // One untimed streamed run carries the working-set numbers.
    let probe = replay(&catalogue, &trace, STREAM_CHUNK);
    let materialized = crate::median_ns(samples, || {
        replay(&catalogue, &trace, n as usize).outcomes.len() as f64
    });
    let streamed = crate::median_ns(samples, || {
        replay(&catalogue, &trace, STREAM_CHUNK).outcomes.len() as f64
    });

    vec![
        BenchEntry {
            name: format!("replay_c{calls}_materialized"),
            value: materialized / 1e6,
            unit: "ms/run".into(),
        },
        BenchEntry {
            name: format!("replay_c{calls}_streamed"),
            value: streamed / 1e6,
            unit: "ms/run".into(),
        },
        // Above 1 the bounded windows beat the one-shot feed (smaller
        // live set, better locality); below 1 the window/advance
        // interleave costs that factor.
        BenchEntry {
            name: format!("replay_c{calls}_feed_speedup"),
            value: materialized / streamed,
            unit: "x".into(),
        },
        BenchEntry {
            name: format!("replay_c{calls}_calls_per_sec"),
            value: n as f64 / (streamed / 1e9),
            unit: "calls/s".into(),
        },
        BenchEntry {
            name: format!("replay_c{calls}_peak_resident"),
            value: probe.peak_resident_calls as f64,
            unit: "calls".into(),
        },
        BenchEntry {
            name: "replay_threads".into(),
            value: crate::bench_gps::host_threads(),
            unit: "count".into(),
        },
    ]
}

/// Streamed-feed throughput at an explicit call count: best of `samples`
/// timed runs. A single wall-clock sample is at the mercy of one
/// scheduler hiccup — under the CI regression gate that reads as a
/// throughput drop — so the reported rate uses the minimum elapsed time
/// over the runs, and the sample count is recorded next to it so the
/// trajectory never mixes best-of-3 points with single-shot ones
/// unknowingly.
pub fn throughput_level(calls: u64, samples: usize) -> Vec<BenchEntry> {
    let catalogue = Catalogue::sebs();
    let trace = bench_trace(&catalogue, calls);
    let n = trace.len();
    let samples = samples.max(1);
    let mut best = f64::INFINITY;
    let mut peak_resident = 0u64;
    for _ in 0..samples {
        let start = std::time::Instant::now();
        let r = std::hint::black_box(replay(&catalogue, &trace, STREAM_CHUNK));
        let elapsed = start.elapsed().as_secs_f64();
        best = best.min(elapsed);
        peak_resident = peak_resident.max(r.peak_resident_calls);
    }
    vec![
        BenchEntry {
            name: format!("replay_c{calls}_calls_per_sec"),
            value: n as f64 / best,
            unit: "calls/s".into(),
        },
        BenchEntry {
            name: format!("replay_c{calls}_peak_resident"),
            value: peak_resident as f64,
            unit: "calls".into(),
        },
        BenchEntry {
            name: format!("replay_c{calls}_samples"),
            value: samples as f64,
            unit: "count".into(),
        },
    ]
}

/// Human-readable rendering of the entries.
pub fn render(entries: &[BenchEntry]) -> String {
    let mut out =
        String::from("Trace-replay benchmarks (bounded-memory ingestion vs one-shot feed)\n");
    for e in entries {
        out.push_str(&format!("  {:<44} {:>16.1} {}\n", e.name, e.value, e.unit));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_the_feed_pair_throughput_and_residency() {
        let entries = run_level(20_000, 1);
        assert_eq!(entries.len(), 6);
        for e in &entries {
            assert!(e.value > 0.0, "{} must be positive", e.name);
        }
        let find = |suffix: &str| {
            entries
                .iter()
                .find(|e| e.name.ends_with(suffix))
                .unwrap_or_else(|| panic!("missing {suffix}"))
        };
        assert_eq!(find("_materialized").unit, "ms/run");
        assert_eq!(find("_streamed").unit, "ms/run");
        assert_eq!(find("_feed_speedup").unit, "x");
        assert_eq!(find("_calls_per_sec").unit, "calls/s");
        assert_eq!(find("_peak_resident").unit, "calls");
        assert!(entries.iter().any(|e| e.name == "replay_threads"));
        // The bounded feed actually bounds: at most chunk calls resident
        // per node.
        assert!(find("_peak_resident").value <= (STREAM_CHUNK * NODES as usize) as f64);
    }

    #[test]
    fn bench_emits_a_valid_schema_shape() {
        let entries = run_level(20_000, 1);
        crate::bench_schema::validate_entries("BENCH_replay.json", &entries).unwrap();
    }

    #[test]
    fn throughput_level_reports_rate_residency_and_sample_count() {
        let entries = throughput_level(10_000, 2);
        assert_eq!(entries.len(), 3);
        assert!(entries[0].name.ends_with("_calls_per_sec"));
        assert!(entries[0].value > 0.0);
        assert!(entries[1].value <= (STREAM_CHUNK * NODES as usize) as f64);
        assert!(entries[2].name.ends_with("_samples"));
        assert_eq!(entries[2].unit, "count");
        assert_eq!(entries[2].value, 2.0);
        // A zero sample request still measures once.
        let one = throughput_level(10_000, 0);
        assert_eq!(one[2].value, 1.0);
    }
}
