//! The single-node experiment grid: CPU cores × intensity × strategy ×
//! 5 seeds.
//!
//! One grid run regenerates:
//!
//! * **Table III** — pooled response-time/stretch statistics per
//!   configuration (the paper pools all calls of the 5 repetitions);
//! * **Table IV** — the same statistics per repetition;
//! * **Table II** — the FIFO-to-baseline maximum-completion-time ratio
//!   ranges over the repetitions;
//! * **Figures 3 and 4** — box-plot statistics of response time and stretch
//!   (and the per-seed appendix figures 7–36).
//!
//! Crucially, for a given (cores, intensity, seed) the *same* call sequence
//! is replayed under every strategy, exactly like the paper's methodology.

use crate::Effort;
use faas_core::{Policy, SchedulerConfig};
use faas_invoker::{simulate_scenario, NodeConfig, NodeMode};
use faas_metrics::compare::{self, Strategy};
use faas_metrics::summary::{response_times_into, stretches_into, MetricSummary, RunSummary};
use faas_metrics::table::{fmt_ratio, fmt_secs, TextTable};
use faas_simcore::stats::BoxPlot;
use faas_workload::scenario::BurstScenario;
use faas_workload::sebs::Catalogue;
use faas_workload::trace::CallOutcome;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// The six strategies in the paper's presentation order.
pub const STRATEGIES: [Strategy; 6] = [
    Strategy::Baseline,
    Strategy::Fifo,
    Strategy::Sept,
    Strategy::Eect,
    Strategy::Rect,
    Strategy::Fc,
];

/// Map a strategy label to the node mode that implements it.
pub fn mode_for(strategy: Strategy) -> NodeMode {
    match strategy {
        Strategy::Baseline => NodeMode::Baseline,
        Strategy::Fifo => NodeMode::Scheduled(SchedulerConfig::paper(Policy::Fifo)),
        Strategy::Sept => NodeMode::Scheduled(SchedulerConfig::paper(Policy::Sept)),
        Strategy::Eect => NodeMode::Scheduled(SchedulerConfig::paper(Policy::Eect)),
        Strategy::Rect => NodeMode::Scheduled(SchedulerConfig::paper(Policy::Rect)),
        Strategy::Fc => NodeMode::Scheduled(SchedulerConfig::paper(Policy::FairChoice)),
    }
}

/// Statistics of one (configuration, strategy, seed) run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeedRun {
    /// The seed.
    pub seed: u64,
    /// Summary over the measured calls of this repetition.
    pub summary: RunSummary,
    /// Box-plot stats of response time (appendix figures).
    pub response_box: BoxPlot,
    /// Box-plot stats of stretch (appendix figures).
    pub stretch_box: BoxPlot,
    /// Measured-phase cold starts.
    pub cold_starts: usize,
    /// Measured calls generated for this repetition.
    pub calls: usize,
    /// Sim health: largest pending-queue length observed.
    pub peak_queue: usize,
    /// Sim health: largest live event-heap size observed.
    pub peak_events: usize,
}

/// All runs of one (cores, intensity, strategy) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cell {
    /// CPU cores.
    pub cpus: u32,
    /// Load intensity.
    pub intensity: u32,
    /// Strategy.
    pub strategy: Strategy,
    /// Per-seed statistics (Table IV rows).
    pub per_seed: Vec<SeedRun>,
    /// Statistics pooled over all calls of all seeds (Table III row).
    pub pooled: RunSummary,
    /// Pooled box-plot of response times (Fig. 3).
    pub response_box: BoxPlot,
    /// Pooled box-plot of stretch (Fig. 4).
    pub stretch_box: BoxPlot,
}

/// The whole grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GridResult {
    /// All cells, ordered by (cpus, intensity, strategy order).
    pub cells: Vec<Cell>,
}

impl GridResult {
    /// Look up one cell.
    pub fn cell(&self, cpus: u32, intensity: u32, strategy: Strategy) -> Option<&Cell> {
        self.cells
            .iter()
            .find(|c| c.cpus == cpus && c.intensity == intensity && c.strategy == strategy)
    }

    /// Core counts present.
    pub fn cpu_set(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.cells.iter().map(|c| c.cpus).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Intensities present.
    pub fn intensity_set(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.cells.iter().map(|c| c.intensity).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// Core-count and intensity axes (full grid includes the appendix points).
pub fn axes(effort: Effort) -> (Vec<u32>, Vec<u32>) {
    if effort.quick {
        (vec![10], vec![30, 60])
    } else {
        (vec![5, 10, 20], vec![30, 40, 60, 90, 120])
    }
}

/// Run the grid.
pub fn run(effort: Effort) -> GridResult {
    let catalogue = Catalogue::sebs();
    let (cpu_axis, intensity_axis) = axes(effort);
    let seeds = effort.seed_set();

    // One task per (cpus, intensity, seed): replay the same scenario under
    // all six strategies.
    let tasks: Vec<(u32, u32, u64)> = cpu_axis
        .iter()
        .flat_map(|&c| {
            intensity_axis
                .iter()
                .flat_map(move |&v| seeds.iter().map(move |&s| (c, v, s)))
        })
        .collect();

    struct StrategyRun {
        strategy: Strategy,
        outcomes: Vec<CallOutcome>,
        cold_starts: usize,
        peak_queue: usize,
        peak_events: usize,
    }

    struct TaskOut {
        cpus: u32,
        intensity: u32,
        seed: u64,
        // One run per strategy, plus burst start for completion anchoring.
        runs: Vec<StrategyRun>,
        burst_start: faas_simcore::time::SimTime,
    }

    let outputs: Vec<TaskOut> = tasks
        .par_iter()
        .map(|&(cpus, intensity, seed)| {
            let scenario = BurstScenario::standard(cpus, intensity).generate(&catalogue, seed);
            let cfg = NodeConfig::paper(cpus);
            let runs = STRATEGIES
                .iter()
                .map(|&strategy| {
                    let result =
                        simulate_scenario(&catalogue, &scenario, &mode_for(strategy), &cfg, seed);
                    StrategyRun {
                        strategy,
                        cold_starts: result.measured_cold_starts(),
                        peak_queue: result.peak_queue,
                        peak_events: result.peak_events,
                        outcomes: result.measured().copied().collect(),
                    }
                })
                .collect();
            TaskOut {
                cpus,
                intensity,
                seed,
                runs,
                burst_start: scenario.burst_start,
            }
        })
        .collect();

    // Reduce into cells. The scratch buffers are reused across every run
    // (zero steady-state allocation; the grid reduces thousands of runs).
    let mut cells = Vec::new();
    let mut refs: Vec<&CallOutcome> = Vec::new();
    let mut resp: Vec<f64> = Vec::new();
    let mut stretch: Vec<f64> = Vec::new();
    for &cpus in &cpu_axis {
        for &intensity in &intensity_axis {
            for &strategy in &STRATEGIES {
                let mut per_seed = Vec::new();
                let mut pooled_resp: Vec<f64> = Vec::new();
                let mut pooled_stretch: Vec<f64> = Vec::new();
                let mut pooled_max_c: f64 = 0.0;
                for out in outputs
                    .iter()
                    .filter(|o| o.cpus == cpus && o.intensity == intensity)
                {
                    let run = out
                        .runs
                        .iter()
                        .find(|r| r.strategy == strategy)
                        .expect("every strategy runs");
                    refs.clear();
                    refs.extend(run.outcomes.iter());
                    let summary = RunSummary::from_outcomes(&refs, &catalogue, out.burst_start);
                    response_times_into(&refs, &mut resp);
                    stretches_into(&refs, &catalogue, &mut stretch);
                    per_seed.push(SeedRun {
                        seed: out.seed,
                        summary,
                        response_box: BoxPlot::from_data(&resp),
                        stretch_box: BoxPlot::from_data(&stretch),
                        cold_starts: run.cold_starts,
                        calls: run.outcomes.len(),
                        peak_queue: run.peak_queue,
                        peak_events: run.peak_events,
                    });
                    pooled_max_c = pooled_max_c.max(summary.max_completion);
                    pooled_resp.extend_from_slice(&resp);
                    pooled_stretch.extend_from_slice(&stretch);
                }
                let pooled = RunSummary {
                    response: MetricSummary::from_values(&pooled_resp),
                    stretch: MetricSummary::from_values(&pooled_stretch),
                    max_completion: pooled_max_c,
                };
                cells.push(Cell {
                    cpus,
                    intensity,
                    strategy,
                    per_seed,
                    pooled,
                    response_box: BoxPlot::from_data(&pooled_resp),
                    stretch_box: BoxPlot::from_data(&pooled_stretch),
                });
            }
        }
    }
    GridResult { cells }
}

/// Render Table III (pooled statistics, with paper reference columns).
pub fn render_table3(grid: &GridResult) -> String {
    let mut t = TextTable::new([
        "CPUs/int/strategy",
        "R avg",
        "paper",
        "R p50",
        "paper",
        "R p95",
        "paper",
        "S avg",
        "paper",
        "max c",
        "paper",
    ]);
    for cell in &grid.cells {
        let paper = compare::table3(cell.cpus, cell.intensity, cell.strategy);
        let pick = |f: fn(&compare::Table3Row) -> f64| {
            paper.map(|r| fmt_secs(f(r))).unwrap_or_else(|| "-".into())
        };
        t.row([
            format!("{}/{}/{}", cell.cpus, cell.intensity, cell.strategy.name()),
            fmt_secs(cell.pooled.response.mean),
            pick(|r| r.r_avg),
            fmt_secs(cell.pooled.response.p50),
            pick(|r| r.r_p50),
            fmt_secs(cell.pooled.response.p95),
            pick(|r| r.r_p95),
            fmt_secs(cell.pooled.stretch.mean),
            pick(|r| r.s_avg),
            fmt_secs(cell.pooled.max_completion),
            pick(|r| r.max_c),
        ]);
    }
    format!(
        "Table III: aggregated single-node results (measured vs paper)\n{}",
        t.render()
    )
}

/// Render Table IV (per-seed statistics, with a per-run sim-health view:
/// calls generated, peak pending queue, peak live event-heap size).
pub fn render_table4(grid: &GridResult) -> String {
    let mut t = TextTable::new([
        "CPUs/int/strategy/seed",
        "R avg",
        "R p50",
        "R p75",
        "R p95",
        "R p99",
        "S avg",
        "S p50",
        "max c",
        "calls",
        "peakQ",
        "peakEv",
    ]);
    for cell in &grid.cells {
        for run in &cell.per_seed {
            t.row([
                format!(
                    "{}/{}/{}/{}",
                    cell.cpus,
                    cell.intensity,
                    cell.strategy.name(),
                    run.seed
                ),
                fmt_secs(run.summary.response.mean),
                fmt_secs(run.summary.response.p50),
                fmt_secs(run.summary.response.p75),
                fmt_secs(run.summary.response.p95),
                fmt_secs(run.summary.response.p99),
                fmt_secs(run.summary.stretch.mean),
                fmt_secs(run.summary.stretch.p50),
                fmt_secs(run.summary.max_completion),
                run.calls.to_string(),
                run.peak_queue.to_string(),
                run.peak_events.to_string(),
            ]);
        }
    }
    format!("Table IV: per-repetition results\n{}", t.render())
}

/// Render Table II: per-configuration FIFO/baseline max-completion ratio
/// ranges, next to the paper's published ranges.
pub fn render_table2(grid: &GridResult) -> String {
    let mut t = TextTable::new(["CPUs/int", "ratio lo", "ratio hi", "paper lo", "paper hi"]);
    for cpus in grid.cpu_set() {
        for intensity in grid.intensity_set() {
            let (Some(fifo), Some(base)) = (
                grid.cell(cpus, intensity, Strategy::Fifo),
                grid.cell(cpus, intensity, Strategy::Baseline),
            ) else {
                continue;
            };
            let ratios: Vec<f64> = fifo
                .per_seed
                .iter()
                .zip(&base.per_seed)
                .map(|(f, b)| f.summary.max_completion / b.summary.max_completion)
                .collect();
            let lo = ratios.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = ratios.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let paper = compare::table2(cpus, intensity);
            t.row([
                format!("{cpus}/{intensity}"),
                fmt_ratio(lo),
                fmt_ratio(hi),
                paper.map(|p| fmt_ratio(p.ratio_lo)).unwrap_or("-".into()),
                paper.map(|p| fmt_ratio(p.ratio_hi)).unwrap_or("-".into()),
            ]);
        }
    }
    format!(
        "Table II: FIFO-to-baseline maximum completion time ratios\n{}",
        t.render()
    )
}

/// Render the box-plot panels of Fig. 3 (response time) or Fig. 4 (stretch).
pub fn render_boxplots(grid: &GridResult, stretch: bool) -> String {
    let mut out = String::new();
    let (name, metric) = if stretch {
        ("Fig. 4 (stretch)", "stretch")
    } else {
        ("Fig. 3 (response time, s)", "response")
    };
    out.push_str(&format!("{name}: box-plot statistics per panel\n"));
    for cpus in grid.cpu_set() {
        for intensity in grid.intensity_set() {
            out.push_str(&format!(
                "-- {cpus} CPUs, intensity {intensity} ({metric})\n"
            ));
            let mut t = TextTable::new(["strategy", "wlo", "p25", "median", "p75", "whi", "mean"]);
            for &strategy in &STRATEGIES {
                if let Some(cell) = grid.cell(cpus, intensity, strategy) {
                    let b = if stretch {
                        cell.stretch_box
                    } else {
                        cell.response_box
                    };
                    t.row([
                        strategy.name().to_string(),
                        fmt_secs(b.whisker_lo),
                        fmt_secs(b.p25),
                        fmt_secs(b.median),
                        fmt_secs(b.p75),
                        fmt_secs(b.whisker_hi),
                        fmt_secs(b.mean),
                    ]);
                }
            }
            out.push_str(&t.render());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_grid() -> GridResult {
        run(Effort {
            seeds: 1,
            quick: true,
        })
    }

    #[test]
    fn grid_has_all_cells() {
        let g = quick_grid();
        // quick: 1 cpu count x 2 intensities x 6 strategies.
        assert_eq!(g.cells.len(), 12);
        assert!(g.cell(10, 30, Strategy::Baseline).is_some());
        assert!(g.cell(10, 60, Strategy::Fc).is_some());
    }

    #[test]
    fn sept_and_fc_beat_fifo_under_load() {
        let g = quick_grid();
        let avg = |s: Strategy| g.cell(10, 60, s).unwrap().pooled.response.mean;
        assert!(avg(Strategy::Sept) < avg(Strategy::Fifo) / 2.0);
        assert!(avg(Strategy::Fc) < avg(Strategy::Fifo) / 2.0);
    }

    #[test]
    fn stretch_improvement_exceeds_response_improvement() {
        // The paper's headline: stretch gains (x18) dwarf response gains
        // (x4) because short calls benefit most.
        let g = quick_grid();
        let cell = |s| g.cell(10, 60, s).unwrap();
        let resp_gain =
            cell(Strategy::Fifo).pooled.response.mean / cell(Strategy::Fc).pooled.response.mean;
        let stretch_gain =
            cell(Strategy::Fifo).pooled.stretch.mean / cell(Strategy::Fc).pooled.stretch.mean;
        assert!(
            stretch_gain > resp_gain,
            "stretch gain {stretch_gain:.1} vs response gain {resp_gain:.1}"
        );
    }

    #[test]
    fn renders_include_paper_references() {
        let g = quick_grid();
        let t3 = render_table3(&g);
        assert!(t3.contains("paper"));
        assert!(t3.contains("10/30/FIFO"));
        let t2 = render_table2(&g);
        assert!(t2.contains("10/30"));
        let t4 = render_table4(&g);
        assert!(t4.contains("/101")); // seed column
        assert!(t4.contains("peakQ") && t4.contains("peakEv")); // sim health
        let f3 = render_boxplots(&g, false);
        assert!(f3.contains("Fig. 3"));
        let f4 = render_boxplots(&g, true);
        assert!(f4.contains("Fig. 4"));
    }

    #[test]
    fn per_seed_carries_sim_health() {
        let g = quick_grid();
        let cell = g.cell(10, 60, Strategy::Baseline).unwrap();
        for run in &cell.per_seed {
            assert_eq!(run.calls, 660, "1.1 * 10 * 60 measured calls");
            assert!(run.peak_events > 0, "event-heap peak is tracked");
            assert!(run.peak_queue > 0, "queue peak is tracked under load");
        }
    }

    #[test]
    fn pooled_max_is_max_over_seeds() {
        let g = run(Effort {
            seeds: 2,
            quick: true,
        });
        let cell = g.cell(10, 30, Strategy::Fifo).unwrap();
        let seed_max = cell
            .per_seed
            .iter()
            .map(|r| r.summary.max_completion)
            .fold(0.0f64, f64::max);
        assert!((cell.pooled.max_completion - seed_max).abs() < 1e-9);
    }
}
