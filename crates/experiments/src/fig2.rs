//! Fig. 2 reproduction: cold starts as a function of memory and intensity.
//!
//! §VI: 10 CPU cores, intensities 30–120, memory pool from 2 GiB to
//! 128 GiB, comparing the original OpenWhisk container management (a)
//! against the paper's FIFO variant (b). The paper's conclusions:
//!
//! * baseline cold starts depend strongly on intensity and barely on memory;
//! * the FIFO variant's cold starts fall with memory and plateau (at ~zero)
//!   from 32 GiB, which is why the remaining experiments fix 32 GiB.

use crate::Effort;
use faas_core::{Policy, SchedulerConfig};
use faas_invoker::{simulate_scenario, NodeConfig, NodeMode};
use faas_metrics::table::TextTable;
use faas_workload::scenario::BurstScenario;
use faas_workload::sebs::Catalogue;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Memory points of Fig. 2, MiB.
pub const MEMORY_POINTS_MB: [u64; 7] = [2048, 4096, 8192, 16384, 32768, 65536, 131072];
/// Intensity series of Fig. 2.
pub const INTENSITIES: [u32; 5] = [30, 40, 60, 90, 120];

/// One measured point of Fig. 2.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fig2Point {
    /// Memory pool, MiB.
    pub memory_mb: u64,
    /// Load intensity.
    pub intensity: u32,
    /// Mean cold starts over the seeds (baseline node).
    pub baseline_cold_starts: f64,
    /// Mean cold starts over the seeds (our FIFO node).
    pub fifo_cold_starts: f64,
}

/// The full Fig. 2 result grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2Result {
    /// All measured points.
    pub points: Vec<Fig2Point>,
}

/// Run the Fig. 2 sweep on 10-core nodes.
pub fn run(effort: Effort) -> Fig2Result {
    let catalogue = Catalogue::sebs();
    let memories: Vec<u64> = if effort.quick {
        vec![2048, 32768, 131072]
    } else {
        MEMORY_POINTS_MB.to_vec()
    };
    let intensities: Vec<u32> = if effort.quick {
        vec![30, 120]
    } else {
        INTENSITIES.to_vec()
    };
    let seeds = effort.seed_set();

    let cases: Vec<(u64, u32)> = memories
        .iter()
        .flat_map(|&m| intensities.iter().map(move |&v| (m, v)))
        .collect();

    let points: Vec<Fig2Point> = cases
        .par_iter()
        .map(|&(memory_mb, intensity)| {
            let mut base_sum = 0.0;
            let mut fifo_sum = 0.0;
            for &seed in seeds {
                let scenario = BurstScenario::standard(10, intensity).generate(&catalogue, seed);
                let cfg = NodeConfig::paper(10).with_memory_mb(memory_mb);
                let calls = scenario.all_calls();
                let base = faas_invoker::simulate_calls(
                    &catalogue,
                    &calls,
                    &NodeMode::Baseline,
                    &cfg,
                    seed,
                    0,
                );
                base_sum += base.measured_cold_starts() as f64;
                let fifo = simulate_scenario(
                    &catalogue,
                    &scenario,
                    &NodeMode::Scheduled(SchedulerConfig::paper(Policy::Fifo)),
                    &cfg,
                    seed,
                );
                fifo_sum += fifo.measured_cold_starts() as f64;
            }
            Fig2Point {
                memory_mb,
                intensity,
                baseline_cold_starts: base_sum / seeds.len() as f64,
                fifo_cold_starts: fifo_sum / seeds.len() as f64,
            }
        })
        .collect();

    Fig2Result { points }
}

/// Render both panels of Fig. 2 as tables (memory rows x intensity columns).
pub fn render(result: &Fig2Result) -> String {
    let mut memories: Vec<u64> = result.points.iter().map(|p| p.memory_mb).collect();
    memories.sort_unstable();
    memories.dedup();
    let mut intensities: Vec<u32> = result.points.iter().map(|p| p.intensity).collect();
    intensities.sort_unstable();
    intensities.dedup();

    let panel = |pick: &dyn Fn(&Fig2Point) -> f64, title: &str| -> String {
        let mut header = vec!["memory".to_string()];
        header.extend(intensities.iter().map(|v| format!("int {v}")));
        let mut t = TextTable::new(header);
        for &m in &memories {
            let mut row = vec![format!("{} MiB", m)];
            for &v in &intensities {
                let p = result
                    .points
                    .iter()
                    .find(|p| p.memory_mb == m && p.intensity == v)
                    .expect("grid point present");
                row.push(format!("{:.0}", pick(p)));
            }
            t.row(row);
        }
        format!("{title}\n{}", t.render())
    };

    format!(
        "{}\n{}",
        panel(
            &|p| p.baseline_cold_starts,
            "Fig. 2a: cold starts, original OpenWhisk (10 CPUs)"
        ),
        panel(
            &|p| p.fifo_cold_starts,
            "Fig. 2b: cold starts, our approach / FIFO (10 CPUs)"
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Fig2Result {
        run(Effort {
            seeds: 1,
            quick: true,
        })
    }

    #[test]
    fn fifo_plateaus_with_memory() {
        let r = quick();
        // Fig. 2b: at 32 GiB our FIFO has (almost) no cold starts; at 2 GiB
        // it thrashes.
        for &v in &[30u32, 120] {
            let small = r
                .points
                .iter()
                .find(|p| p.memory_mb == 2048 && p.intensity == v)
                .unwrap();
            let big = r
                .points
                .iter()
                .find(|p| p.memory_mb == 32768 && p.intensity == v)
                .unwrap();
            assert!(
                small.fifo_cold_starts > 50.0,
                "2 GiB must thrash at intensity {v}"
            );
            assert!(
                big.fifo_cold_starts < 20.0,
                "32 GiB must (almost) eliminate cold starts at intensity {v}, got {}",
                big.fifo_cold_starts
            );
        }
    }

    #[test]
    fn baseline_cold_starts_grow_with_intensity() {
        let r = quick();
        let at = |v: u32| {
            r.points
                .iter()
                .find(|p| p.memory_mb == 32768 && p.intensity == v)
                .unwrap()
                .baseline_cold_starts
        };
        assert!(
            at(120) > 3.0 * at(30).max(1.0),
            "baseline cold starts must grow strongly with intensity: {} vs {}",
            at(30),
            at(120)
        );
    }

    #[test]
    fn baseline_high_intensity_insensitive_to_memory() {
        // Fig. 2a: at intensity 120 over 80% of requests cold-start, nearly
        // independent of memory.
        let r = quick();
        let at = |m: u64| {
            r.points
                .iter()
                .find(|p| p.memory_mb == m && p.intensity == 120)
                .unwrap()
                .baseline_cold_starts
        };
        let lo = at(32768);
        let hi = at(131072);
        assert!(lo > 800.0, "most of 1320 requests cold-start: {lo}");
        let rel = (lo - hi).abs() / lo;
        assert!(rel < 0.35, "memory dependence should be weak: {lo} vs {hi}");
    }

    #[test]
    fn render_mentions_both_panels() {
        let s = render(&quick());
        assert!(s.contains("Fig. 2a"));
        assert!(s.contains("Fig. 2b"));
    }
}
