//! Experiment harness CLI: regenerate every table and figure of the paper.
//!
//! ```text
//! experiments <subcommand> [--quick] [--seeds N] [--out DIR] [--per-seed]
//!             [--source synth:RATE|trace:PATH]
//!
//! `--source` replaces the analytic workload of the experiments that
//! thread a `WorkloadSource` (table1, fig5, fig6) with an Azure-style
//! synthetic trace (`synth:RATE`, mean calls/sec over the 60 s window)
//! or a recorded JSONL trace (`trace:PATH`), so they run trace-backed.
//!
//! subcommands:
//!   table1   Idle-system function latencies (paper Table I)
//!   fig2     Cold starts vs memory sweep (paper Fig. 2)
//!   table2   FIFO/baseline completion-time ratios (paper Table II)
//!   table3   Aggregated single-node grid (paper Table III; --per-seed
//!            additionally prints Table IV)
//!   fig3     Response-time box plots (paper Fig. 3; appendix 7-21 via
//!            --per-seed)
//!   fig4     Stretch box plots (paper Fig. 4; appendix 22-36 via
//!            --per-seed)
//!   fig5     Fair-Choice fairness panels (paper Fig. 5)
//!   fig6     Multi-node experiments (paper Fig. 6, Tables V & VI;
//!            appendix 37-38)
//!   ablations  Hyper-parameter sweeps beyond the paper
//!   functions  Per-function fairness breakdown (SSII's view)
//!   sweep      Workload sweep: arrival process x function mix x container
//!              weights x strategy (uniform/Poisson/MMPP/diurnal x
//!              equal/fairness/Zipf x uniform/tiered/Zipf-correlated),
//!              with per-combination sim-health columns, plus a
//!              cluster-size sweep through the streamed multi-node engine,
//!              a fault-scenario robustness sweep (goodput, drop
//!              rate, retries, p99 under degradation), a coupled-engine
//!              robustness table (static vs feedback load balancing with
//!              cross-node failover under the strict crash preset) and a
//!              trace-replay table (Azure-style synthetic traces through
//!              the bounded-memory streamed trace engine)
//!   bench      GPS-kernel (uniform, weighted and multi-resource DRF),
//!              event-queue, workload-generation, dynamic-capacity,
//!              coupled-engine and trace-replay micro-benchmarks; writes
//!              BENCH_gps.json, BENCH_weighted_gps.json, BENCH_drf.json,
//!              BENCH_events.json, BENCH_workload.json, BENCH_faults.json,
//!              BENCH_coupled.json and BENCH_replay.json for the perf
//!              trajectory
//!   replay     Trace-replay benchmark alone at an explicit call count:
//!              replay [--calls N] [--out DIR]; writes BENCH_replay.json
//!   check-bench  Validate the BENCH_*.json artifacts under --out and,
//!              with --baseline HISTORY, gate each timing/throughput
//!              entry against the rolling median of the history
//!              (--gate-window K, --gate-timing-pct P,
//!              --gate-throughput-pct P); exits non-zero on schema drift
//!              or a named perf regression
//!   history-append  Fold the current artifacts under --out into the
//!              append-only BENCH_HISTORY.json, stamped with
//!              --commit/--message/--timestamp (GITHUB_SHA is the
//!              commit fallback)
//!   dashboard  Render BENCH_HISTORY.json as a self-contained static
//!              HTML page of SVG sparklines (--history IN, --out HTML)
//!   run        Custom single configuration with per-call CSV trace:
//!              run --cores C --intensity V --policy P [--seed S]
//!   all      Everything above
//! ```
//!
//! Results are also written as JSON under `--out` (default `results/`).

use faas_experiments::bench_history::{BenchHistory, CommitMeta, GateConfig, HISTORY_FILE};
use faas_experiments::{
    ablations, bench_coupled, bench_drf, bench_events, bench_faults, bench_gps, bench_history,
    bench_replay, bench_schema, bench_weighted_gps, bench_workload, custom, dashboard, fig2, fig5,
    fig6, functions, grid, sweep, table1, Effort,
};
use faas_simcore::time::SimDuration;
use faas_workload::synth::SynthSpec;
use faas_workload::trace_source::{TraceSpec, WorkloadSource};
use std::path::PathBuf;
use std::time::Instant;

struct Opts {
    effort: Effort,
    out: PathBuf,
    per_seed: bool,
    /// Replacement workload for the experiments that thread a
    /// [`WorkloadSource`] (table1, fig5, fig6): run trace-backed instead
    /// of on the paper's analytic scenario.
    source: Option<WorkloadSource>,
}

fn usage() -> ! {
    eprintln!(
        "usage: experiments <table1|fig2|table2|table3|fig3|fig4|fig5|fig6|ablations|functions|sweep|bench|check-bench|history-append|dashboard|replay|run|all> \
         [--quick] [--seeds N] [--out DIR] [--per-seed] \
         [--source synth:RATE|trace:PATH]\n\
         (--source runs table1/fig5/fig6 trace-backed: an Azure-style \
         synthetic trace at RATE calls/s, or a recorded JSONL trace)\n\
         (replay: [--calls N] [--out DIR])\n\
         (check-bench: [--out DIR] [--baseline HISTORY] [--gate-window K] \
         [--gate-timing-pct P] [--gate-throughput-pct P])\n\
         (history-append: [--out DIR] [--history PATH] [--commit ID] [--message MSG] \
         [--timestamp TS])\n\
         (dashboard: [--history PATH] [--out HTML])"
    );
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else { usage() };
    if cmd == "run" {
        run_custom(args.collect());
        return;
    }
    if cmd == "replay" {
        run_replay(args.collect());
        return;
    }
    if cmd == "check-bench" {
        run_check_bench(args.collect());
        return;
    }
    if cmd == "history-append" {
        run_history_append(args.collect());
        return;
    }
    if cmd == "dashboard" {
        run_dashboard(args.collect());
        return;
    }
    let mut opts = Opts {
        effort: Effort::full(),
        out: PathBuf::from("results"),
        per_seed: false,
        source: None,
    };
    let rest: Vec<String> = args.collect();
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--quick" => {
                opts.effort.quick = true;
                opts.effort.seeds = opts.effort.seeds.min(2);
            }
            "--per-seed" => opts.per_seed = true,
            "--seeds" => {
                i += 1;
                let n: usize = rest
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                opts.effort.seeds = n.clamp(1, 5);
            }
            "--out" => {
                i += 1;
                opts.out = PathBuf::from(rest.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--source" => {
                i += 1;
                opts.source = Some(parse_source(
                    &rest.get(i).cloned().unwrap_or_else(|| usage()),
                ));
            }
            _ => usage(),
        }
        i += 1;
    }

    let started = Instant::now();
    match cmd.as_str() {
        "table1" => run_table1(&opts),
        "fig2" => run_fig2(&opts),
        "table2" | "table3" | "fig3" | "fig4" => run_grid(&cmd, &opts),
        "fig5" => run_fig5(&opts),
        "fig6" => run_fig6(&opts),
        "ablations" => run_ablations(&opts),
        "functions" => run_functions(&opts),
        "sweep" => run_sweep(&opts),
        "bench" => run_bench(&opts),
        "all" => {
            run_table1(&opts);
            run_fig2(&opts);
            run_grid("all", &opts);
            run_fig5(&opts);
            run_fig6(&opts);
            run_ablations(&opts);
            run_functions(&opts);
            run_sweep(&opts);
            run_bench(&opts);
        }
        _ => usage(),
    }
    eprintln!("[done in {:.1}s]", started.elapsed().as_secs_f64());
}

/// Parse `--source synth:RATE` (an Azure-style synthetic trace at a
/// mean of RATE calls/sec over the paper's 60 s window) or
/// `--source trace:PATH` (a recorded JSONL trace).
fn parse_source(spec: &str) -> WorkloadSource {
    if let Some(rate) = spec.strip_prefix("synth:") {
        let rate: f64 = rate.parse().unwrap_or_else(|_| usage());
        WorkloadSource::Trace(TraceSpec::Synthetic(SynthSpec::azure(
            rate,
            SimDuration::from_secs(60),
        )))
    } else if let Some(path) = spec.strip_prefix("trace:") {
        WorkloadSource::Trace(TraceSpec::Recorded { path: path.into() })
    } else {
        usage()
    }
}

/// Unwrap a trace-backed experiment result (the only error is a recorded
/// trace file that could not be opened).
fn open_source<T>(result: std::io::Result<T>) -> T {
    result.unwrap_or_else(|e| {
        eprintln!("failed to open trace: {e}");
        std::process::exit(1);
    })
}

fn run_table1(opts: &Opts) {
    let result = match &opts.source {
        Some(source) => open_source(table1::run_source(source, faas_experiments::SEEDS[0])),
        None => table1::run(faas_experiments::SEEDS[0]),
    };
    println!("{}", table1::render(&result));
    save(opts, "table1.json", &result);
}

fn run_fig2(opts: &Opts) {
    let result = fig2::run(opts.effort);
    println!("{}", fig2::render(&result));
    save(opts, "fig2.json", &result);
}

fn run_grid(which: &str, opts: &Opts) {
    let result = grid::run(opts.effort);
    match which {
        "table2" => println!("{}", grid::render_table2(&result)),
        "table3" => {
            println!("{}", grid::render_table3(&result));
            if opts.per_seed {
                println!("{}", grid::render_table4(&result));
            }
        }
        "fig3" => println!("{}", grid::render_boxplots(&result, false)),
        "fig4" => println!("{}", grid::render_boxplots(&result, true)),
        _ => {
            println!("{}", grid::render_table3(&result));
            if opts.per_seed {
                println!("{}", grid::render_table4(&result));
            }
            println!("{}", grid::render_table2(&result));
            println!("{}", grid::render_boxplots(&result, false));
            println!("{}", grid::render_boxplots(&result, true));
        }
    }
    save(opts, "grid.json", &result);
}

fn run_bench(opts: &Opts) {
    let entries = bench_gps::run();
    println!("{}", bench_gps::render(&entries));
    save(opts, "BENCH_gps.json", &entries);
    let weighted = bench_weighted_gps::run();
    println!("{}", bench_weighted_gps::render(&weighted));
    save(opts, "BENCH_weighted_gps.json", &weighted);
    let drf = bench_drf::run();
    println!("{}", bench_drf::render(&drf));
    save(opts, "BENCH_drf.json", &drf);
    let events = bench_events::run();
    println!("{}", bench_events::render(&events));
    save(opts, "BENCH_events.json", &events);
    let workload = bench_workload::run();
    println!("{}", bench_workload::render(&workload));
    save(opts, "BENCH_workload.json", &workload);
    let faults = bench_faults::run();
    println!("{}", bench_faults::render(&faults));
    save(opts, "BENCH_faults.json", &faults);
    let coupled = bench_coupled::run();
    println!("{}", bench_coupled::render(&coupled));
    save(opts, "BENCH_coupled.json", &coupled);
    let replay = bench_replay::run();
    println!("{}", bench_replay::render(&replay));
    save(opts, "BENCH_replay.json", &replay);
}

/// Replay benchmark at an explicit call count: `experiments replay
/// [--calls N] [--out DIR]`. Writes the same `BENCH_replay.json` shape as
/// `experiments bench` (which runs the full 10^6/10^7 trajectory); the CI
/// smoke run uses a reduced count.
fn run_replay(args: Vec<String>) {
    let mut calls: u64 = 1_000_000;
    let mut out = PathBuf::from("results");
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--calls" => calls = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--out" => out = PathBuf::from(value(&mut i)),
            _ => usage(),
        }
        i += 1;
    }
    let entries = bench_replay::run_level(calls, 3);
    println!("{}", bench_replay::render(&entries));
    let path = out.join("BENCH_replay.json");
    if let Err(e) = faas_metrics::export::write_json(&path, &entries) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

fn run_sweep(opts: &Opts) {
    let result = sweep::run(opts.effort);
    println!("{}", sweep::render(&result));
    save(opts, "sweep.json", &result);
}

/// Validate the `BENCH_*.json` artifacts under `--out`: every file must
/// parse, record the host thread count and carry baseline/candidate
/// timings plus a speedup ratio that matches its own timing pair. With
/// `--baseline HISTORY`, additionally gate every timing and `calls/s`
/// entry against the rolling median of the history and exit non-zero
/// with a named, per-entry report on regression. A missing baseline file
/// (the first run of a fresh history chain) skips the gate instead of
/// failing.
fn run_check_bench(args: Vec<String>) {
    let mut out = PathBuf::from("results");
    let mut baseline: Option<PathBuf> = None;
    let mut cfg = GateConfig::default();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--out" => out = PathBuf::from(value(&mut i)),
            "--baseline" => baseline = Some(PathBuf::from(value(&mut i))),
            "--gate-window" => {
                cfg.window = value(&mut i).parse().unwrap_or_else(|_| usage());
                if cfg.window == 0 {
                    usage();
                }
            }
            "--gate-timing-pct" => {
                cfg.timing_regress_pct = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--gate-throughput-pct" => {
                cfg.throughput_drop_pct = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            _ => usage(),
        }
        i += 1;
    }
    match bench_schema::validate_dir(&out) {
        Ok(seen) => println!("bench artifacts ok: {}", seen.join(", ")),
        Err(e) => {
            eprintln!("bench artifact schema check failed: {e}");
            std::process::exit(1);
        }
    }
    let Some(baseline) = baseline else { return };
    if !baseline.exists() {
        println!(
            "no baseline history at {} (first run): regression gate skipped",
            baseline.display()
        );
        return;
    }
    let history = match BenchHistory::load_or_empty(&baseline) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("could not load baseline history: {e}");
            std::process::exit(1);
        }
    };
    match bench_history::gate_dir(&cfg, &history, &out) {
        Ok((violations, compared)) if violations.is_empty() => println!(
            "perf regression gate ok: {compared} entr{} within {}%/{}% of the \
             rolling median over up to {} point(s)",
            if compared == 1 { "y" } else { "ies" },
            cfg.timing_regress_pct,
            cfg.throughput_drop_pct,
            cfg.window
        ),
        Ok((violations, _)) => {
            eprint!("{}", bench_history::render_violations(&violations));
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("perf regression gate failed to run: {e}");
            std::process::exit(1);
        }
    }
}

/// Fold the current artifacts under `--out` into the append-only
/// `BENCH_HISTORY.json`. Commit identity comes from `--commit`,
/// `--message` and `--timestamp` (CI passes `git log -1` values); the
/// commit id falls back to `GITHUB_SHA`, and the timestamp to the wall
/// clock — ambient state stays here in the binary, never in the library,
/// so append/gate/render remain deterministic under test.
fn run_history_append(args: Vec<String>) {
    let mut out = PathBuf::from("results");
    let mut history_path: Option<PathBuf> = None;
    let mut commit: Option<String> = None;
    let mut message: Option<String> = None;
    let mut timestamp: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--out" => out = PathBuf::from(value(&mut i)),
            "--history" => history_path = Some(PathBuf::from(value(&mut i))),
            "--commit" => commit = Some(value(&mut i)),
            "--message" => message = Some(value(&mut i)),
            "--timestamp" => timestamp = Some(value(&mut i)),
            _ => usage(),
        }
        i += 1;
    }
    let history_path = history_path.unwrap_or_else(|| out.join(HISTORY_FILE));
    let meta = CommitMeta {
        id: commit
            .or_else(|| std::env::var("GITHUB_SHA").ok())
            .unwrap_or_else(|| "unknown".into()),
        message: message.unwrap_or_default(),
        timestamp: timestamp.unwrap_or_else(|| {
            let secs = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0);
            format!("unix:{secs}")
        }),
    };
    let result = BenchHistory::load_or_empty(&history_path).and_then(|mut history| {
        let keys = history.append(&out, &meta)?;
        history.save(&history_path)?;
        Ok((keys, history.depth()))
    });
    match result {
        Ok((keys, depth)) => println!(
            "history {} now {depth} point(s) deep at commit {} ({} suite(s): {})",
            history_path.display(),
            meta.id,
            keys.len(),
            keys.join(", ")
        ),
        Err(e) => {
            eprintln!("history append failed: {e}");
            std::process::exit(1);
        }
    }
}

/// Render `BENCH_HISTORY.json` as the self-contained static dashboard.
fn run_dashboard(args: Vec<String>) {
    let mut history_path = PathBuf::from("results").join(HISTORY_FILE);
    let mut out = PathBuf::from("results/dashboard.html");
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--history" => history_path = PathBuf::from(value(&mut i)),
            "--out" => out = PathBuf::from(value(&mut i)),
            _ => usage(),
        }
        i += 1;
    }
    let history = match BenchHistory::load_or_empty(&history_path) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("could not load history: {e}");
            std::process::exit(1);
        }
    };
    let html = dashboard::render(&history);
    match faas_metrics::export::write_text(&out, &html) {
        Ok(()) => println!(
            "dashboard written to {} ({} suite(s), {} point(s))",
            out.display(),
            history.series.len(),
            history.depth()
        ),
        Err(e) => {
            eprintln!("could not write {}: {e}", out.display());
            std::process::exit(1);
        }
    }
}

fn run_fig5(opts: &Opts) {
    let result = match &opts.source {
        Some(source) => open_source(fig5::run_source(source, opts.effort)),
        None => fig5::run(opts.effort),
    };
    println!("{}", fig5::render(&result));
    save(opts, "fig5.json", &result);
}

fn run_fig6(opts: &Opts) {
    let result = match &opts.source {
        Some(source) => open_source(fig6::run_source(source, 10, opts.effort)),
        None => fig6::run(opts.effort),
    };
    println!("{}", fig6::render(&result));
    save(opts, "fig6.json", &result);
}

fn run_custom(args: Vec<String>) {
    let mut spec = custom::CustomRun {
        cores: 10,
        intensity: 60,
        policy: Some(faas_core::Policy::FairChoice),
        seed: faas_experiments::SEEDS[0],
    };
    let mut out = PathBuf::from("results");
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--cores" => spec.cores = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--intensity" => spec.intensity = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => spec.seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--out" => out = PathBuf::from(value(&mut i)),
            "--policy" => {
                let name = value(&mut i);
                spec.policy = if name.eq_ignore_ascii_case("baseline") {
                    None
                } else {
                    Some(faas_core::Policy::from_name(&name).unwrap_or_else(|| usage()))
                };
            }
            _ => usage(),
        }
        i += 1;
    }
    let catalogue = faas_workload::sebs::Catalogue::sebs();
    let (scenario, result) = spec.execute(&catalogue);
    println!("{}", custom::render(&catalogue, &spec, &scenario, &result));
    let csv = custom::trace_csv(&catalogue, &scenario, &result);
    let path = out.join(format!("trace-{}.csv", spec.label().replace('/', "-")));
    match csv.write_to(&path) {
        Ok(()) => println!("trace written to {}", path.display()),
        Err(e) => eprintln!("warning: could not write trace: {e}"),
    }
}

fn run_functions(opts: &Opts) {
    let result = functions::run(opts.effort);
    println!("{}", functions::render(&result));
    save(opts, "functions.json", &result);
}

fn run_ablations(opts: &Opts) {
    let result = ablations::run(opts.effort);
    println!("{}", ablations::render(&result));
    save(opts, "ablations.json", &result);
}

fn save<T: serde::Serialize>(opts: &Opts, name: &str, value: &T) {
    let path = opts.out.join(name);
    if let Err(e) = faas_metrics::export::write_json(&path, value) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}
