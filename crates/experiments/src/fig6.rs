//! Fig. 6 / Tables V & VI reproduction: multi-node experiments.
//!
//! §VIII: a fixed total load (1320 requests for 10-core workers, 2376 for
//! 18-core workers, uniform over 60 s) is served by 4, 3, 2 or 1 workers
//! under the baseline and under Fair-Choice. The paper's headline: FC on
//! 3 VMs provides better response-time statistics than the baseline on
//! 4 VMs.

use crate::Effort;
use faas_cluster::{run_cluster, run_cluster_source, ClusterConfig, ClusterScenario, LoadBalancer};
use faas_core::{Policy, SchedulerConfig};
use faas_invoker::{NodeConfig, NodeMode};
use faas_metrics::compare::{self, Strategy};
use faas_metrics::summary::MetricSummary;
use faas_metrics::table::{fmt_secs, TextTable};
use faas_simcore::time::{SimDuration, SimTime};
use faas_workload::faults::FaultSpec;
use faas_workload::sebs::Catalogue;
use faas_workload::trace_source::WorkloadSource;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One multi-node configuration result (a Table V row).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Row {
    /// Number of worker nodes.
    pub nodes: u16,
    /// Action cores per node.
    pub cpus_per_node: u32,
    /// Per-core intensity implied by the fixed load.
    pub intensity: u32,
    /// Strategy (baseline or FC, as in the paper).
    pub strategy: Strategy,
    /// Response-time statistics pooled over seeds (seconds).
    pub response: MetricSummary,
    /// Maximum completion time relative to burst start (seconds).
    pub max_completion: f64,
    /// Per-seed average response times (Table VI granularity).
    pub per_seed_avg: Vec<f64>,
    /// Sim health: largest pending-queue length over all nodes and seeds.
    pub peak_queue: usize,
    /// Sim health: largest live event-heap size over all nodes and seeds.
    pub peak_events: usize,
}

/// The multi-node result set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Result {
    /// All rows.
    pub rows: Vec<Fig6Row>,
}

impl Fig6Result {
    /// Look up a row.
    pub fn row(&self, nodes: u16, cpus: u32, strategy: Strategy) -> Option<&Fig6Row> {
        self.rows
            .iter()
            .find(|r| r.nodes == nodes && r.cpus_per_node == cpus && r.strategy == strategy)
    }
}

/// Run the multi-node experiments for both node sizes of the paper.
pub fn run(effort: Effort) -> Fig6Result {
    let catalogue = Catalogue::sebs();
    let seeds = effort.seed_set();
    // (cores per node, calls per function for the fixed load): 10-core
    // experiment sends 1320 = 11 x 120, 18-core sends 2376 = 11 x 216.
    let node_sizes: &[(u32, usize)] = if effort.quick {
        &[(10, 120)]
    } else {
        &[(10, 120), (18, 216)]
    };
    let node_counts: &[u16] = if effort.quick { &[4, 1] } else { &[4, 3, 2, 1] };

    let cases: Vec<(u32, usize, u16, Strategy)> = node_sizes
        .iter()
        .flat_map(|&(cores, per_func)| {
            node_counts.iter().flat_map(move |&n| {
                [Strategy::Baseline, Strategy::Fc]
                    .into_iter()
                    .map(move |s| (cores, per_func, n, s))
            })
        })
        .collect();

    let rows: Vec<Fig6Row> = cases
        .par_iter()
        .map(|&(cores, per_func, nodes, strategy)| {
            let mode = match strategy {
                Strategy::Baseline => NodeMode::Baseline,
                Strategy::Fc => NodeMode::Scheduled(SchedulerConfig::paper(Policy::FairChoice)),
                _ => unreachable!("the paper's SSVIII uses baseline and FC only"),
            };
            let cfg = ClusterConfig::independent(
                nodes,
                NodeConfig::paper(cores),
                LoadBalancer::RoundRobin,
            );
            let mut pooled: Vec<f64> = Vec::new();
            let mut per_seed_avg = Vec::new();
            let mut max_completion: f64 = 0.0;
            let mut peak_queue = 0usize;
            let mut peak_events = 0usize;
            for &seed in seeds {
                let scenario = ClusterScenario::generate(
                    &catalogue,
                    per_func,
                    cores,
                    SimDuration::from_secs(60),
                    seed,
                );
                let result = run_cluster(&catalogue, &scenario, &mode, &cfg, seed);
                let resp: Vec<f64> = result
                    .outcomes
                    .iter()
                    .filter(|o| o.is_measured())
                    .map(|o| o.response_time().as_secs_f64())
                    .collect();
                per_seed_avg.push(resp.iter().sum::<f64>() / resp.len() as f64);
                max_completion = max_completion.max(
                    result
                        .last_completion
                        .saturating_since(scenario.burst_start)
                        .as_secs_f64(),
                );
                peak_queue = peak_queue.max(result.peak_queue);
                peak_events = peak_events.max(result.peak_events);
                pooled.extend(resp);
            }
            // The per-core intensity the paper quotes: the 4-node setup is
            // intensity 30, halving the nodes doubles it.
            let intensity = 120 / nodes as u32;
            Fig6Row {
                nodes,
                cpus_per_node: cores,
                intensity,
                strategy,
                response: MetricSummary::from_values(&pooled),
                max_completion,
                per_seed_avg,
                peak_queue,
                peak_events,
            }
        })
        .collect();

    Fig6Result { rows }
}

/// Ingestion window of trace-backed runs (matches the sweep's chunk).
const SOURCE_CHUNK: usize = 512;

/// The multi-node scaling experiment over an arbitrary [`WorkloadSource`]
/// — the trace-backed counterpart of [`run`]. The same fixed-total-load
/// design: every node count serves the *same* source, so halving the
/// worker count doubles the per-node load. Trace seeds are the run seeds,
/// so pooling over seeds pools over trace realizations. The `intensity`
/// column keeps the paper's `120 / nodes` mapping, which is meaningful
/// for paper-shaped loads only; `max_completion` is anchored to the first
/// measured release of each run (a trace carries no warm-up phase). The
/// only fallible path is opening a recorded trace file.
pub fn run_source(
    source: &WorkloadSource,
    cores: u32,
    effort: Effort,
) -> std::io::Result<Fig6Result> {
    let catalogue = Catalogue::sebs();
    let seeds = effort.seed_set();
    let node_counts: &[u16] = if effort.quick { &[4, 1] } else { &[4, 3, 2, 1] };

    let mut rows = Vec::new();
    for &nodes in node_counts {
        for strategy in [Strategy::Baseline, Strategy::Fc] {
            let mode = match strategy {
                Strategy::Baseline => NodeMode::Baseline,
                Strategy::Fc => NodeMode::Scheduled(SchedulerConfig::paper(Policy::FairChoice)),
                _ => unreachable!("the paper's SSVIII uses baseline and FC only"),
            };
            let cfg = ClusterConfig::independent(
                nodes,
                NodeConfig::paper(cores),
                LoadBalancer::RoundRobin,
            );
            let mut pooled: Vec<f64> = Vec::new();
            let mut per_seed_avg = Vec::new();
            let mut max_completion: f64 = 0.0;
            let mut peak_queue = 0usize;
            let mut peak_events = 0usize;
            for &seed in seeds {
                let result = run_cluster_source(
                    &catalogue,
                    source,
                    &mode,
                    &cfg,
                    &FaultSpec::none(),
                    seed,
                    seed ^ 0xC1u64,
                    SOURCE_CHUNK,
                )?;
                let resp: Vec<f64> = result
                    .measured()
                    .map(|o| o.response_time().as_secs_f64())
                    .collect();
                assert!(!resp.is_empty(), "source produced no measured calls");
                per_seed_avg.push(resp.iter().sum::<f64>() / resp.len() as f64);
                let start = result
                    .measured()
                    .map(|o| o.release)
                    .min()
                    .unwrap_or(SimTime::ZERO);
                max_completion = max_completion
                    .max(result.last_completion.saturating_since(start).as_secs_f64());
                peak_queue = peak_queue.max(result.peak_queue);
                peak_events = peak_events.max(result.peak_events);
                pooled.extend(resp);
            }
            let intensity = 120 / nodes as u32;
            rows.push(Fig6Row {
                nodes,
                cpus_per_node: cores,
                intensity,
                strategy,
                response: MetricSummary::from_values(&pooled),
                max_completion,
                per_seed_avg,
                peak_queue,
                peak_events,
            });
        }
    }
    Ok(Fig6Result { rows })
}

/// Render Table V with paper references.
pub fn render(result: &Fig6Result) -> String {
    let mut t = TextTable::new([
        "nodes x cores/strategy",
        "R avg",
        "paper",
        "R p50",
        "paper",
        "R p75",
        "paper",
        "R p95",
        "paper",
        "R p99",
        "paper",
        "max c",
        "paper",
        "peakQ",
        "peakEv",
    ]);
    for r in &result.rows {
        let paper = compare::table5(r.nodes as u32, r.cpus_per_node, r.strategy);
        let pick = |f: fn(&compare::Table5Row) -> f64| {
            paper.map(|p| fmt_secs(f(p))).unwrap_or_else(|| "-".into())
        };
        t.row([
            format!("{}x{}/{}", r.nodes, r.cpus_per_node, r.strategy.name()),
            fmt_secs(r.response.mean),
            pick(|p| p.r_avg),
            fmt_secs(r.response.p50),
            pick(|p| p.r_p50),
            fmt_secs(r.response.p75),
            pick(|p| p.r_p75),
            fmt_secs(r.response.p95),
            pick(|p| p.r_p95),
            fmt_secs(r.response.p99),
            pick(|p| p.r_p99),
            fmt_secs(r.max_completion),
            pick(|p| p.max_c),
            r.peak_queue.to_string(),
            r.peak_events.to_string(),
        ]);
    }
    let mut out = format!(
        "Fig. 6 / Table V: multi-node response times (fixed total load)\n{}",
        t.render()
    );
    // The headline comparison, spelled out.
    if let (Some(fc3), Some(base4)) = (
        result.row(3, 18, Strategy::Fc),
        result.row(4, 18, Strategy::Baseline),
    ) {
        out.push_str(&format!(
            "headline: FC on 3 VMs avg {} vs baseline on 4 VMs avg {} (paper: 68 vs 240)\n",
            fmt_secs(fc3.response.mean),
            fmt_secs(base4.response.mean)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Fig6Result {
        run(Effort {
            seeds: 1,
            quick: true,
        })
    }

    #[test]
    fn fc_beats_baseline_at_equal_nodes() {
        let r = quick();
        for nodes in [4u16, 1] {
            let fc = r.row(nodes, 10, Strategy::Fc).unwrap();
            let base = r.row(nodes, 10, Strategy::Baseline).unwrap();
            assert!(
                fc.response.mean < base.response.mean,
                "{nodes} nodes: FC {:.1} vs baseline {:.1}",
                fc.response.mean,
                base.response.mean
            );
        }
    }

    #[test]
    fn fewer_nodes_fc_still_competitive() {
        // The paper's headline at 10-core granularity: FC on 1 node beats
        // the baseline on 1 node by a wide margin; and FC with a quarter of
        // the nodes stays below the 4-node baseline average.
        let r = quick();
        let fc1 = r.row(1, 10, Strategy::Fc).unwrap();
        let base1 = r.row(1, 10, Strategy::Baseline).unwrap();
        assert!(fc1.response.mean * 2.0 < base1.response.mean);
    }

    #[test]
    fn intensity_mapping() {
        let r = quick();
        assert_eq!(r.row(4, 10, Strategy::Fc).unwrap().intensity, 30);
        assert_eq!(r.row(1, 10, Strategy::Fc).unwrap().intensity, 120);
    }

    #[test]
    fn trace_backed_scaling_keeps_more_nodes_at_least_as_fast() {
        use faas_workload::synth::SynthSpec;
        use faas_workload::trace_source::TraceSpec;
        let src = WorkloadSource::Trace(TraceSpec::Synthetic(SynthSpec::azure(
            6.0,
            SimDuration::from_secs(60),
        )));
        let r = run_source(
            &src,
            10,
            Effort {
                seeds: 1,
                quick: true,
            },
        )
        .unwrap();
        // Quick mode: {4, 1} nodes x {baseline, FC}.
        assert_eq!(r.rows.len(), 4);
        for row in &r.rows {
            assert!(
                row.response.count > 0,
                "{} nodes served the trace",
                row.nodes
            );
            assert!(row.peak_events > 0, "sim health populated");
        }
        // The same trace on 4 workers must not lose to 1 worker.
        for strategy in [Strategy::Baseline, Strategy::Fc] {
            let four = r.row(4, 10, strategy).unwrap();
            let one = r.row(1, 10, strategy).unwrap();
            assert!(
                four.response.mean <= one.response.mean,
                "{strategy:?}: 4 nodes ({}) vs 1 node ({})",
                four.response.mean,
                one.response.mean
            );
        }
    }

    #[test]
    fn render_contains_headline_when_full() {
        // Quick mode lacks 18-core rows; render must still work.
        let s = render(&quick());
        assert!(s.contains("Table V"));
    }
}
