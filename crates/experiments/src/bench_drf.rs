//! DRF GPS-kernel trajectory: `experiments bench` → `BENCH_drf.json`.
//!
//! Times the multi-resource dominant-share kernel in `GpsCpu` (incremental
//! DRF partition: per-axis water levels maintained across membership
//! churn) against the seed integrator's O(n)-per-event re-derivation
//! (`ReferenceGpsCpu`) on completion-driven *multi-resource* churn — every
//! task carrying one of the [`faas_cpu::bench_support::DRF_CHURN_SIGNATURES`]
//! demand vectors, with a finite memory-bandwidth capacity installed so
//! both resource axes genuinely compete for the binding constraint and
//! the dominant axis flips as the pool churns.
//!
//! The headline configuration is the 10^4-task level — the acceptance
//! workload where the incremental partition must beat the O(n) reference
//! re-derivation. The thread/core count is recorded alongside the
//! speedups so trajectory points from different machines stay comparable.

use faas_cpu::bench_support::{run_drf_churn, weighted_churn_params};
use faas_cpu::{GpsCpu, ReferenceGpsCpu};

pub use crate::bench_gps::BenchEntry;

/// Task-count levels; the last is the acceptance-criteria 10^4 workload.
const CHURN_TASKS: [usize; 3] = [100, 1_000, 10_000];
/// Completion events per run (each event is next_completion +
/// finished_tasks + remove + replacement add — the invoker tick pattern).
const CHURN_COMPLETIONS: usize = 1_000;
const SAMPLES: usize = 5;

/// Run the DRF churn benchmarks at the standard levels.
pub fn run() -> Vec<BenchEntry> {
    run_levels(&CHURN_TASKS, CHURN_COMPLETIONS)
}

/// Run the DRF churn benchmarks at explicit levels (the unit test uses a
/// reduced configuration; `experiments bench` the full one).
pub fn run_levels(task_levels: &[usize], completions: usize) -> Vec<BenchEntry> {
    let mut entries = Vec::new();
    for &tasks in task_levels {
        let params = weighted_churn_params(tasks);
        let incremental = crate::median_ns(SAMPLES, || {
            let mut kernel = GpsCpu::new(params);
            run_drf_churn(&mut kernel, tasks, completions)
        });
        let reference = crate::median_ns(SAMPLES, || {
            let mut kernel = ReferenceGpsCpu::new(params);
            run_drf_churn(&mut kernel, tasks, completions)
        });
        entries.push(BenchEntry {
            name: format!("drf_gps_churn_n{tasks}_incremental"),
            value: incremental,
            unit: "ns/iter".into(),
        });
        entries.push(BenchEntry {
            name: format!("drf_gps_churn_n{tasks}_reference"),
            value: reference,
            unit: "ns/iter".into(),
        });
        entries.push(BenchEntry {
            name: format!("drf_gps_churn_n{tasks}_speedup"),
            value: reference / incremental,
            unit: "x".into(),
        });
    }
    // The kernels are single-threaded; the machine's parallelism is
    // recorded so trajectory points are attributable to their host shape.
    entries.push(BenchEntry {
        name: "drf_gps_threads".into(),
        value: crate::bench_gps::host_threads(),
        unit: "count".into(),
    });
    entries
}

/// Human-readable rendering of the entries.
pub fn render(entries: &[BenchEntry]) -> String {
    let mut out = String::from("DRF GPS kernel benchmarks (incremental dominant-share vs O(n))\n");
    for e in entries {
        out.push_str(&format!("  {:<40} {:>14.1} {}\n", e.name, e.value, e.unit));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_entries_for_every_level_plus_thread_count() {
        // Smoke-check the shape on a reduced configuration (timings are
        // environment-dependent and debug builds are slow at 10^4 tasks).
        let entries = run_levels(&[50, 200], 100);
        assert_eq!(entries.len(), 2 * 3 + 1);
        for e in &entries {
            assert!(e.value > 0.0, "{} must be positive", e.name);
        }
        assert!(entries.iter().any(|e| e.name == "drf_gps_threads"));
        assert!(entries
            .iter()
            .any(|e| e.name == "drf_gps_churn_n200_speedup"));
    }

    #[test]
    fn full_levels_include_the_acceptance_workload() {
        // The standard configuration names the 10^4-task level the
        // acceptance criteria pin (checked without timing it).
        assert!(CHURN_TASKS.contains(&10_000));
    }
}
