//! Weighted GPS-kernel trajectory: `experiments bench` →
//! `BENCH_weighted_gps.json`.
//!
//! Times the two-clock general-mode kernel in `GpsCpu` (incremental
//! capped/uncapped partition + per-family completion heaps) against the
//! seed integrator's O(n)-per-event accounting (`ReferenceGpsCpu`) on
//! completion-driven *weighted* churn — every task carrying one of the
//! heterogeneous weight/cap tiers of
//! [`faas_cpu::bench_support::WEIGHTED_CHURN_SIGNATURES`], so the bank
//! never leaves general mode and the capped/uncapped boundary is populated
//! on both sides. Two workloads per task level:
//!
//! * `churn` — the membership-churn loop PR 4 introduced (every event
//!   removes and replaces a task), dominated by the rate refresh;
//! * `probe` — the advance/next_completion-heavy variant
//!   ([`faas_cpu::bench_support::run_weighted_probe_churn`]): several
//!   membership-preserving advance + next-completion probes between
//!   completion events, the regime where the old per-slot `advance` and
//!   full-scan `next_completion` paid O(n) per call and the two-clock
//!   kernel pays O(1)/O(log n) — the end-to-end win of the clock rewrite.
//!
//! The headline configuration is the 10^4-task level; the thread/core
//! count is recorded alongside the speedups so trajectory points from
//! different machines stay comparable.

use faas_cpu::bench_support::{
    run_weighted_churn, run_weighted_probe_churn, weighted_churn_params,
};
use faas_cpu::{GpsCpu, ReferenceGpsCpu};

pub use crate::bench_gps::BenchEntry;

/// Task-count levels; the last is the acceptance-criteria 10^4 workload.
const CHURN_TASKS: [usize; 3] = [100, 1_000, 10_000];
/// Completion events per run (each event is next_completion +
/// finished_tasks + remove + replacement add — the invoker tick pattern).
const CHURN_COMPLETIONS: usize = 1_000;
/// Completion events of the probe workload (each carries
/// [`PROBES_PER_EVENT`] extra advance/next_completion pairs).
const PROBE_COMPLETIONS: usize = 250;
/// Membership-preserving advance/next_completion probes between
/// consecutive completion events of the probe workload.
const PROBES_PER_EVENT: usize = 8;
const SAMPLES: usize = 5;

/// Run the weighted churn benchmarks at the standard levels.
pub fn run() -> Vec<BenchEntry> {
    run_levels(&CHURN_TASKS, CHURN_COMPLETIONS, PROBE_COMPLETIONS)
}

/// Run the weighted churn benchmarks at explicit levels (the unit test
/// uses a reduced configuration; `experiments bench` the full one).
pub fn run_levels(
    task_levels: &[usize],
    completions: usize,
    probe_completions: usize,
) -> Vec<BenchEntry> {
    let mut entries = Vec::new();
    for &tasks in task_levels {
        let params = weighted_churn_params(tasks);
        let incremental = crate::median_ns(SAMPLES, || {
            let mut kernel = GpsCpu::new(params);
            run_weighted_churn(&mut kernel, tasks, completions)
        });
        let reference = crate::median_ns(SAMPLES, || {
            let mut kernel = ReferenceGpsCpu::new(params);
            run_weighted_churn(&mut kernel, tasks, completions)
        });
        entries.push(BenchEntry {
            name: format!("weighted_gps_churn_n{tasks}_incremental"),
            value: incremental,
            unit: "ns/iter".into(),
        });
        entries.push(BenchEntry {
            name: format!("weighted_gps_churn_n{tasks}_reference"),
            value: reference,
            unit: "ns/iter".into(),
        });
        entries.push(BenchEntry {
            name: format!("weighted_gps_churn_n{tasks}_speedup"),
            value: reference / incremental,
            unit: "x".into(),
        });
        let probe_incremental = crate::median_ns(SAMPLES, || {
            let mut kernel = GpsCpu::new(params);
            run_weighted_probe_churn(&mut kernel, tasks, probe_completions, PROBES_PER_EVENT)
        });
        let probe_reference = crate::median_ns(SAMPLES, || {
            let mut kernel = ReferenceGpsCpu::new(params);
            run_weighted_probe_churn(&mut kernel, tasks, probe_completions, PROBES_PER_EVENT)
        });
        entries.push(BenchEntry {
            name: format!("weighted_gps_probe_n{tasks}_incremental"),
            value: probe_incremental,
            unit: "ns/iter".into(),
        });
        entries.push(BenchEntry {
            name: format!("weighted_gps_probe_n{tasks}_reference"),
            value: probe_reference,
            unit: "ns/iter".into(),
        });
        entries.push(BenchEntry {
            name: format!("weighted_gps_probe_n{tasks}_speedup"),
            value: probe_reference / probe_incremental,
            unit: "x".into(),
        });
    }
    // The kernels are single-threaded; the machine's parallelism is
    // recorded so trajectory points are attributable to their host shape.
    entries.push(BenchEntry {
        name: "weighted_gps_threads".into(),
        value: crate::bench_gps::host_threads(),
        unit: "count".into(),
    });
    entries
}

/// Human-readable rendering of the entries.
pub fn render(entries: &[BenchEntry]) -> String {
    let mut out = String::from("Weighted GPS kernel benchmarks (incremental partition vs O(n))\n");
    for e in entries {
        out.push_str(&format!("  {:<44} {:>14.1} {}\n", e.name, e.value, e.unit));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_entries_for_every_level_plus_thread_count() {
        // Smoke-check the shape on a reduced configuration (timings are
        // environment-dependent and debug builds are slow at 10^4 tasks).
        let entries = run_levels(&[50, 200], 100, 40);
        assert_eq!(entries.len(), 2 * 6 + 1);
        for e in &entries {
            assert!(e.value > 0.0, "{} must be positive", e.name);
        }
        assert!(entries.iter().any(|e| e.name == "weighted_gps_threads"));
        assert!(entries
            .iter()
            .any(|e| e.name == "weighted_gps_churn_n200_speedup"));
        assert!(entries
            .iter()
            .any(|e| e.name == "weighted_gps_probe_n200_speedup"));
    }

    #[test]
    fn full_levels_include_the_acceptance_workload() {
        // The standard configuration names the 10^4-task level the
        // acceptance criteria pin (checked without timing it).
        assert!(CHURN_TASKS.contains(&10_000));
    }
}
