//! # faas-experiments
//!
//! The experiment harness: one module per table/figure of the paper, each
//! with a `run` function producing a serialisable result and a `render`
//! function printing the reproduced rows next to the paper's published
//! values.
//!
//! | Paper artefact | Module |
//! |----------------|--------|
//! | Table I (idle-system latencies) | [`table1`] |
//! | Fig. 2 (cold starts vs memory) | [`fig2`] |
//! | Figs. 3 & 4 + Tables III & IV (+ appendix Figs. 7–36) | [`grid`] |
//! | Table II (completion-time ratios) | [`grid`] |
//! | Fig. 5 (Fair-Choice fairness) | [`fig5`] |
//! | Fig. 6 + Tables V & VI (+ appendix Figs. 37–38) | [`fig6`] |
//!
//! [`ablations`] goes beyond the paper: hyper-parameter sweeps for the
//! design choices the paper fixes by fiat. [`functions`] renders §II's
//! per-function fairness view for one grid configuration. [`sweep`]
//! crosses the workload subsystem's arrival × mix × container-weight axes
//! with the scheduling strategies — scenario diversity the paper never
//! measured — sweeps cluster sizes through the streamed multi-node
//! engine, and replays Azure-style synthetic traces through the
//! bounded-memory trace engine.
//!
//! The `bench_*` modules write the `BENCH_*.json` perf artifacts;
//! [`bench_history`] folds them into the durable, append-only
//! `BENCH_HISTORY.json` trajectory and gates regressions against its
//! rolling median, and [`dashboard`] renders that trajectory as a
//! self-contained static HTML page of SVG sparklines.
//!
//! All experiments run the 5-seed repetitions in parallel (rayon) and are
//! bit-for-bit reproducible from the seed set.

pub mod ablations;
pub mod bench_coupled;
pub mod bench_drf;
pub mod bench_events;
pub mod bench_faults;
pub mod bench_gps;
pub mod bench_history;
pub mod bench_replay;
pub mod bench_schema;
pub mod bench_weighted_gps;
pub mod bench_workload;
pub mod custom;
pub mod dashboard;
pub mod fig2;
pub mod fig5;
pub mod fig6;
pub mod functions;
pub mod grid;
pub mod sweep;
pub mod table1;

/// Median wall-clock nanoseconds of `f` over `samples` runs. One shared
/// timing method for every `bench_*` module, so the `BENCH_*.json`
/// trajectory points stay methodologically comparable across benchmarks.
pub(crate) fn median_ns<R>(samples: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = std::time::Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_nanos() as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("elapsed times are finite"));
    times[times.len() / 2]
}

/// The seeds of the paper's "5 different random sequences of calls".
pub const SEEDS: [u64; 5] = [101, 202, 303, 404, 505];

/// Reduced configuration for smoke tests and benches: fewer seeds and the
/// cheaper corner of the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Effort {
    /// Number of seeds to run (the paper uses 5).
    pub seeds: usize,
    /// If true, restrict grids to a small representative subset.
    pub quick: bool,
}

impl Effort {
    /// Full paper-scale effort.
    pub fn full() -> Self {
        Effort {
            seeds: SEEDS.len(),
            quick: false,
        }
    }

    /// Quick effort for tests/benches.
    pub fn quick() -> Self {
        Effort {
            seeds: 2,
            quick: true,
        }
    }

    /// The seed slice to use.
    pub fn seed_set(&self) -> &'static [u64] {
        &SEEDS[..self.seeds.min(SEEDS.len())]
    }
}
