//! Coupled-engine trajectory: `experiments bench` → `BENCH_coupled.json`.
//!
//! Times the conservative-window cluster engine against the independent
//! path on the identical workload:
//!
//! * **Overhead**: the §VIII fixed total load on a 4-node cluster under a
//!   static round-robin policy, run through
//!   [`faas_cluster::run_cluster_streamed`] (every node simulated to
//!   completion independently) and through
//!   [`faas_cluster::run_cluster_streamed_coupled`] with a finite
//!   lookahead (lock-step windows, barrier per window). Both produce
//!   bit-identical results — the ratio is the pure price of windowing.
//! * **Feedback**: the same cluster under the strict crash preset routed
//!   by join-shortest-queue with cross-node failover — the workload the
//!   coupled engine exists for, so its wall-clock rides the trajectory
//!   too.
//!
//! The thread/core count is recorded alongside so trajectory points from
//! different machines stay comparable.

use faas_cluster::{
    run_cluster_streamed, run_cluster_streamed_coupled, ClusterConfig, LoadBalancer,
};
use faas_invoker::{NodeConfig, NodeMode};
use faas_simcore::time::SimDuration;
use faas_workload::arrival::ArrivalSpec;
use faas_workload::faults::FaultSpec;
use faas_workload::mix::MixSpec;
use faas_workload::scenario::warmup_waves;
use faas_workload::sebs::Catalogue;
use faas_workload::weight::WeightSpec;
use faas_workload::WorkloadSpec;

pub use crate::bench_gps::BenchEntry;

/// Worker count of the benchmark cluster (the acceptance bar asks for the
/// coupled-vs-independent overhead at 4+ nodes).
const NODES: u16 = 4;
/// Cores per node (the paper's node).
const CORES: u32 = 10;
/// Per-core intensity of the fixed total load.
const INTENSITY: u32 = 60;
/// Conservative-window width of the windowed runs.
const LOOKAHEAD: SimDuration = SimDuration::from_millis(250);
const SAMPLES: usize = 5;

/// Run the coupled-engine benchmarks at the standard level.
pub fn run() -> Vec<BenchEntry> {
    run_level(INTENSITY)
}

/// Run the benchmarks at an explicit intensity (the unit test uses a
/// reduced configuration; `experiments bench` the full one).
pub fn run_level(intensity: u32) -> Vec<BenchEntry> {
    let catalogue = Catalogue::sebs();
    let count = catalogue.len() * CORES as usize * intensity as usize / 10;
    let window = SimDuration::from_secs(60);
    let spec = WorkloadSpec {
        arrival: ArrivalSpec::Uniform { count },
        mix: MixSpec::Equal,
        weights: WeightSpec::Uniform,
        window,
    };
    let mode = NodeMode::Baseline;
    let rr = ClusterConfig::independent(NODES, NodeConfig::paper(CORES), LoadBalancer::RoundRobin);
    let rr_windowed = rr.coupled(LOOKAHEAD, false);
    let none = FaultSpec::none();

    let independent = crate::median_ns(SAMPLES, || {
        let r = run_cluster_streamed(&catalogue, &spec, &mode, &rr, 7, 8);
        r.outcomes.len() as f64
    });
    let windowed = crate::median_ns(SAMPLES, || {
        let r = run_cluster_streamed_coupled(&catalogue, &spec, &mode, &rr_windowed, &none, 7, 8);
        r.outcomes.len() as f64
    });

    // The engine's raison d'être: feedback routing + failover under the
    // strict crash preset.
    let (_, burst_start) = warmup_waves(&catalogue);
    let faults = FaultSpec::crash_strict(7, burst_start, window);
    let jsq = ClusterConfig::independent(
        NODES,
        NodeConfig::paper(CORES),
        LoadBalancer::JoinShortestQueue { seed: 7 },
    )
    .coupled(LOOKAHEAD, true);
    let feedback = crate::median_ns(SAMPLES, || {
        let r = run_cluster_streamed_coupled(&catalogue, &spec, &mode, &jsq, &faults, 7, 8);
        r.outcomes.len() as f64
    });

    let mut entries = vec![
        BenchEntry {
            name: format!("coupled_n{NODES}_v{intensity}_independent"),
            value: independent / 1e6,
            unit: "ms/run".into(),
        },
        BenchEntry {
            name: format!("coupled_n{NODES}_v{intensity}_windowed"),
            value: windowed / 1e6,
            unit: "ms/run".into(),
        },
        // Above 1 the windowed engine is faster than the independent
        // path; below 1 its barriers cost that factor. Either way the
        // trajectory shows window overhead drifting.
        BenchEntry {
            name: format!("coupled_n{NODES}_v{intensity}_speedup"),
            value: independent / windowed,
            unit: "x".into(),
        },
        BenchEntry {
            name: format!("coupled_n{NODES}_v{intensity}_jsq_crash"),
            value: feedback / 1e6,
            unit: "ms/run".into(),
        },
    ];
    // The windowed advancement fans out on rayon; record the host shape.
    entries.push(BenchEntry {
        name: "coupled_threads".into(),
        value: crate::bench_gps::host_threads(),
        unit: "count".into(),
    });
    entries
}

/// Human-readable rendering of the entries.
pub fn render(entries: &[BenchEntry]) -> String {
    let mut out =
        String::from("Coupled-engine benchmarks (conservative windows vs independent node runs)\n");
    for e in entries {
        out.push_str(&format!("  {:<44} {:>14.1} {}\n", e.name, e.value, e.unit));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_the_overhead_pair_plus_feedback_and_threads() {
        // Reduced intensity: the shape (names, units, positivity) is what
        // the schema check and dashboards key on.
        let entries = run_level(10);
        assert_eq!(entries.len(), 5);
        for e in &entries {
            assert!(e.value > 0.0, "{} must be positive", e.name);
        }
        assert!(entries
            .iter()
            .any(|e| e.name == "coupled_n4_v10_independent" && e.unit == "ms/run"));
        assert!(entries
            .iter()
            .any(|e| e.name == "coupled_n4_v10_windowed" && e.unit == "ms/run"));
        assert!(entries
            .iter()
            .any(|e| e.name == "coupled_n4_v10_speedup" && e.unit == "x"));
        assert!(entries
            .iter()
            .any(|e| e.name == "coupled_n4_v10_jsq_crash" && e.unit == "ms/run"));
        assert!(entries.iter().any(|e| e.name == "coupled_threads"));
    }

    #[test]
    fn full_level_is_the_acceptance_configuration() {
        // Overhead must be measured at 4+ nodes; const block so the check
        // fires at compile time instead of tripping assertions_on_constants.
        const { assert!(NODES >= 4) };
        assert_eq!(INTENSITY, 60);
    }

    #[test]
    fn bench_emits_a_valid_schema_shape() {
        let entries = run_level(10);
        crate::bench_schema::validate_entries("BENCH_coupled.json", &entries).unwrap();
    }
}
