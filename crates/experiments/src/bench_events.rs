//! Event-queue performance trajectory: `experiments bench`.
//!
//! Times the indexed event heap (`faas_simcore::events::EventQueue`)
//! against the previous lazy-cancellation design (kept here as
//! [`LazyEventQueue`], an executable fossil of the `BinaryHeap + HashMap`
//! queue) on the two access patterns that matter:
//!
//! * **tick storm** — the baseline invoker's cancellation-heavy pattern:
//!   a population of live events plus one "next GPS completion" tick that
//!   moves on every event. The lazy queue cannot move it, so every event
//!   abandons a generation-stamped dead tick that must be popped and
//!   discarded later; the indexed queue reschedules one handle in place.
//! * **hold** — the pure pop/schedule path with no cancellation at all.
//!   This one *isolates the cost of index maintenance* (a position-table
//!   write per sift level): the indexed queue pays a modest premium here,
//!   which is the price of the tick-storm win and of bounded memory. The
//!   simulator's pop-heavy consumer (the baseline invoker) always runs
//!   the tick pattern, so the storm entry is the representative one;
//!   end-to-end node wall time (`baseline_node_c10_v90_wall` in
//!   `BENCH_gps.json`) is the tie-breaker.
//!
//! Entries land in `BENCH_events.json` next to `BENCH_gps.json`, in the
//! same `{"name", "value", "unit"}` dashboard style.

use crate::bench_gps::BenchEntry;
use faas_simcore::events::EventQueue;
use faas_simcore::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::hash::{BuildHasherDefault, Hasher};

/// The predecessor queue's sequence-number hasher (Fibonacci mix), kept so
/// the lazy baseline pays exactly the hash cost the real pre-PR queue paid
/// — benchmarking it with SipHash would inflate the indexed queue's win.
#[derive(Default)]
struct SeqHasher(u64);

impl Hasher for SeqHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("SeqHasher only hashes u64 sequence numbers");
    }
    fn write_u64(&mut self, seq: u64) {
        self.0 = seq.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

/// Live-event population for both workloads.
const POPULATION: usize = 256;
/// Operations per sample.
const OPS: usize = 50_000;
const SAMPLES: usize = 7;

/// The pre-indexed-heap event queue: lazy cancellation over
/// `BinaryHeap + HashMap`, preserved verbatim so the benchmark keeps
/// comparing against the real predecessor design.
struct LazyEventQueue<E> {
    heap: BinaryHeap<LazyEntry<E>>,
    next_seq: u64,
    queued: HashMap<u64, bool, BuildHasherDefault<SeqHasher>>,
    cancelled_in_heap: usize,
    now: SimTime,
}

struct LazyEntry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for LazyEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for LazyEntry<E> {}
impl<E> PartialOrd for LazyEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for LazyEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> LazyEventQueue<E> {
    fn new() -> Self {
        LazyEventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            queued: HashMap::default(),
            cancelled_in_heap: 0,
            now: SimTime::ZERO,
        }
    }

    fn schedule(&mut self, time: SimTime, payload: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(LazyEntry { time, seq, payload });
        self.queued.insert(seq, false);
        seq
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.queued.remove(&entry.seq) == Some(true) {
                self.cancelled_in_heap -= 1;
                continue;
            }
            self.now = entry.time;
            return Some((entry.time, entry.payload));
        }
        None
    }
}

/// Deterministic inter-event gaps (xorshift; no external RNG needed).
struct Gaps(u64);

impl Gaps {
    fn next_millis(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        1 + self.0 % 200
    }
}

/// Tick-storm on the indexed queue: the tick is one handle, rescheduled
/// in place; the queue never grows past `POPULATION + 1`.
fn tick_storm_indexed() -> u64 {
    let mut q = EventQueue::new();
    let mut gaps = Gaps(0x9E3779B97F4A7C15);
    for i in 0..POPULATION as u64 {
        q.schedule(SimTime::from_millis(gaps.next_millis() * (i + 1)), i);
    }
    let mut tick = q.schedule(SimTime::ZERO, u64::MAX);
    let mut checksum = 0u64;
    for _ in 0..OPS {
        let (now, id) = q.pop().expect("population never drains");
        if id != u64::MAX {
            checksum = checksum.wrapping_add(id);
            q.schedule(now + SimDuration::from_millis(gaps.next_millis()), id);
            // Every event moves the "next completion": one in-place
            // reschedule of the single live tick.
            q.reschedule(tick, now + SimDuration::from_millis(gaps.next_millis()));
        } else {
            // The tick itself fired; its handle is dead until re-armed.
            tick = q.schedule(now + SimDuration::from_millis(gaps.next_millis()), u64::MAX);
        }
    }
    assert!(q.len() <= POPULATION + 1, "indexed queue must stay bounded");
    checksum
}

/// Tick-storm on the lazy queue: no reschedule exists, so every event
/// schedules a fresh generation-stamped tick and the stale ones are popped
/// and discarded one by one — exactly the pre-PR invoker pattern.
fn tick_storm_lazy() -> u64 {
    let mut q = LazyEventQueue::new();
    let mut gaps = Gaps(0x9E3779B97F4A7C15);
    for i in 0..POPULATION as u64 {
        q.schedule(
            SimTime::from_millis(gaps.next_millis() * (i + 1)),
            Payload::Event(i),
        );
    }
    let mut generation = 0u64;
    q.schedule(SimTime::ZERO, Payload::Tick(generation));
    let mut checksum = 0u64;
    let mut real_ops = 0usize;
    while real_ops < OPS {
        let (now, payload) = q.pop().expect("population never drains");
        match payload {
            Payload::Tick(g) if g != generation => continue, // stale: discard
            Payload::Tick(_) => {}
            Payload::Event(id) => {
                checksum = checksum.wrapping_add(id);
                q.schedule(
                    now + SimDuration::from_millis(gaps.next_millis()),
                    Payload::Event(id),
                );
            }
        }
        real_ops += 1;
        generation += 1;
        q.schedule(
            now + SimDuration::from_millis(gaps.next_millis()),
            Payload::Tick(generation),
        );
    }
    checksum
}

#[derive(Clone, Copy)]
enum Payload {
    Event(u64),
    Tick(u64),
}

/// Hold model (pop + schedule, no cancellation) on the indexed queue.
fn hold_indexed() -> u64 {
    let mut q = EventQueue::new();
    let mut gaps = Gaps(0xD1B54A32D192ED03);
    for i in 0..POPULATION as u64 {
        q.schedule(SimTime::from_millis(gaps.next_millis() * (i + 1)), i);
    }
    let mut checksum = 0u64;
    for _ in 0..OPS {
        let (now, id) = q.pop().expect("population never drains");
        checksum = checksum.wrapping_add(id);
        q.schedule(now + SimDuration::from_millis(gaps.next_millis()), id);
    }
    checksum
}

/// Hold model on the lazy queue.
fn hold_lazy() -> u64 {
    let mut q = LazyEventQueue::new();
    let mut gaps = Gaps(0xD1B54A32D192ED03);
    for i in 0..POPULATION as u64 {
        q.schedule(SimTime::from_millis(gaps.next_millis() * (i + 1)), i);
    }
    let mut checksum = 0u64;
    for _ in 0..OPS {
        let (now, id) = q.pop().expect("population never drains");
        checksum = checksum.wrapping_add(id);
        q.schedule(now + SimDuration::from_millis(gaps.next_millis()), id);
    }
    checksum
}

/// Run the event-queue benchmarks.
pub fn run() -> Vec<BenchEntry> {
    let mut entries = Vec::new();
    let storm_indexed = crate::median_ns(SAMPLES, tick_storm_indexed) / OPS as f64;
    let storm_lazy = crate::median_ns(SAMPLES, tick_storm_lazy) / OPS as f64;
    entries.push(BenchEntry {
        name: format!("event_queue_tick_storm_n{POPULATION}_indexed"),
        value: storm_indexed,
        unit: "ns/op".into(),
    });
    entries.push(BenchEntry {
        name: format!("event_queue_tick_storm_n{POPULATION}_lazy"),
        value: storm_lazy,
        unit: "ns/op".into(),
    });
    entries.push(BenchEntry {
        name: format!("event_queue_tick_storm_n{POPULATION}_speedup"),
        value: storm_lazy / storm_indexed,
        unit: "x".into(),
    });
    let hold_idx = crate::median_ns(SAMPLES, hold_indexed) / OPS as f64;
    let hold_lzy = crate::median_ns(SAMPLES, hold_lazy) / OPS as f64;
    entries.push(BenchEntry {
        name: format!("event_queue_hold_n{POPULATION}_indexed"),
        value: hold_idx,
        unit: "ns/op".into(),
    });
    entries.push(BenchEntry {
        name: format!("event_queue_hold_n{POPULATION}_lazy"),
        value: hold_lzy,
        unit: "ns/op".into(),
    });
    entries.push(BenchEntry {
        name: "event_queue_threads".into(),
        value: crate::bench_gps::host_threads(),
        unit: "count".into(),
    });
    entries
}

/// Human-readable rendering of the entries.
pub fn render(entries: &[BenchEntry]) -> String {
    let mut out = String::from("Event-queue benchmarks\n");
    for e in entries {
        out.push_str(&format!("  {:<44} {:>12.1} {}\n", e.name, e.value, e.unit));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_agree_and_entries_are_positive() {
        // Both queues must serve the same event sequence (same checksum):
        // the benchmark compares equivalent work, not different schedules.
        assert_eq!(tick_storm_indexed(), tick_storm_lazy());
        assert_eq!(hold_indexed(), hold_lazy());
        let entries = run();
        assert_eq!(entries.len(), 6);
        for e in &entries {
            assert!(e.value > 0.0, "{} must be positive", e.name);
        }
        crate::bench_schema::validate_entries("BENCH_events.json", &entries).unwrap();
    }
}
