//! Table I reproduction: idle-system function latencies.
//!
//! §V-A: "we benchmarked each function in an idle on-premises setup: we
//! warmed up the corresponding containers, and then we called this function
//! 50 times." We replay exactly that protocol on a simulated idle node and
//! report the 5th percentile, median and 95th percentile of the client-side
//! response time per function.

use faas_cluster::{run_cluster_source, ClusterConfig, LoadBalancer};
use faas_core::{Policy, SchedulerConfig};
use faas_invoker::{simulate_calls, NodeConfig, NodeMode};
use faas_metrics::table::TextTable;
use faas_simcore::stats::percentile_sorted;
use faas_simcore::time::{SimDuration, SimTime};
use faas_workload::faults::FaultSpec;
use faas_workload::sebs::Catalogue;
use faas_workload::trace::{Call, CallId, CallKind};
use faas_workload::trace_source::WorkloadSource;
use serde::{Deserialize, Serialize};

/// Per-function idle-system latency quantiles (milliseconds).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    /// Function name.
    pub name: String,
    /// Measured 5th percentile (ms).
    pub p5_ms: f64,
    /// Measured median (ms).
    pub median_ms: f64,
    /// Measured 95th percentile (ms).
    pub p95_ms: f64,
    /// Paper's published 5th percentile (ms).
    pub paper_p5_ms: f64,
    /// Paper's published median (ms).
    pub paper_median_ms: f64,
    /// Paper's published 95th percentile (ms).
    pub paper_p95_ms: f64,
}

/// The full Table I result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Result {
    /// One row per SeBS function, in the paper's (descending median) order.
    pub rows: Vec<Table1Row>,
}

/// Run the idle-system benchmark: 50 sequential calls per warmed function.
pub fn run(seed: u64) -> Table1Result {
    let catalogue = Catalogue::sebs();
    let cfg = NodeConfig::paper(4);
    let mode = NodeMode::Scheduled(SchedulerConfig::paper(Policy::Fifo));

    let mut rows = Vec::with_capacity(catalogue.len());
    for (func, spec) in catalogue.iter() {
        // Warm up one container, then 50 sequential calls spaced far enough
        // apart that the node is always idle (the slowest function takes
        // ~9 s; cleanup at 4 cores adds ~1.2x processing).
        let mut calls = vec![Call {
            id: CallId(0),
            func,
            release: SimTime::ZERO,
            kind: CallKind::Warmup,
        }];
        let spacing = SimDuration::from_secs(30);
        let mut at = SimTime::from_secs(30);
        for i in 0..50u64 {
            calls.push(Call {
                id: CallId(i + 1),
                func,
                release: at,
                kind: CallKind::Measured,
            });
            at += spacing;
        }
        let result = simulate_calls(&catalogue, &calls, &mode, &cfg, seed ^ func.0 as u64, 0);
        let mut resp_ms: Vec<f64> = result
            .measured()
            .map(|o| o.response_time().as_millis_f64())
            .collect();
        resp_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
        rows.push(Table1Row {
            name: spec.name.to_string(),
            p5_ms: percentile_sorted(&resp_ms, 0.05),
            median_ms: percentile_sorted(&resp_ms, 0.50),
            p95_ms: percentile_sorted(&resp_ms, 0.95),
            paper_p5_ms: spec.client_p5_ms,
            paper_median_ms: spec.client_median_ms,
            paper_p95_ms: spec.client_p95_ms,
        });
    }
    Table1Result { rows }
}

/// Per-function latency quantiles over an arbitrary [`WorkloadSource`] —
/// the trace-backed counterpart of [`run`]: replay the source on the
/// paper's idle-benchmark node (4 cores, FIFO) and report each called
/// function's client-side response-time quantiles next to the paper's
/// published idle-system numbers. Functions the source never calls are
/// omitted; under real (non-idle) load the measured quantiles include
/// queueing, so they upper-bound the paper's idle columns rather than
/// reproduce them. The only fallible path is opening a recorded trace
/// file.
pub fn run_source(source: &WorkloadSource, seed: u64) -> std::io::Result<Table1Result> {
    let catalogue = Catalogue::sebs();
    let cfg = ClusterConfig::independent(1, NodeConfig::paper(4), LoadBalancer::RoundRobin);
    let mode = NodeMode::Scheduled(SchedulerConfig::paper(Policy::Fifo));
    let result = run_cluster_source(
        &catalogue,
        source,
        &mode,
        &cfg,
        &FaultSpec::none(),
        seed,
        seed ^ 0xC1u64,
        512,
    )?;
    let mut rows = Vec::with_capacity(catalogue.len());
    for (func, spec) in catalogue.iter() {
        let mut resp_ms: Vec<f64> = result
            .measured()
            .filter(|o| o.func == func)
            .map(|o| o.response_time().as_millis_f64())
            .collect();
        if resp_ms.is_empty() {
            continue;
        }
        resp_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
        rows.push(Table1Row {
            name: spec.name.to_string(),
            p5_ms: percentile_sorted(&resp_ms, 0.05),
            median_ms: percentile_sorted(&resp_ms, 0.50),
            p95_ms: percentile_sorted(&resp_ms, 0.95),
            paper_p5_ms: spec.client_p5_ms,
            paper_median_ms: spec.client_median_ms,
            paper_p95_ms: spec.client_p95_ms,
        });
    }
    Ok(Table1Result { rows })
}

/// Render the result with paper-vs-measured columns.
pub fn render(result: &Table1Result) -> String {
    let mut t = TextTable::new([
        "function",
        "p5 (paper)",
        "p5 (ours)",
        "median (paper)",
        "median (ours)",
        "p95 (paper)",
        "p95 (ours)",
    ]);
    for r in &result.rows {
        t.row([
            r.name.clone(),
            format!("{:.0} ms", r.paper_p5_ms),
            format!("{:.0} ms", r.p5_ms),
            format!("{:.0} ms", r.paper_median_ms),
            format!("{:.0} ms", r.median_ms),
            format!("{:.0} ms", r.paper_p95_ms),
            format!("{:.0} ms", r.p95_ms),
        ]);
    }
    format!(
        "Table I: idle-system response times (50 warm calls per function)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn medians_track_paper_within_tolerance() {
        let result = run(42);
        assert_eq!(result.rows.len(), 11);
        for row in &result.rows {
            let rel = (row.median_ms - row.paper_median_ms).abs() / row.paper_median_ms;
            assert!(
                rel < 0.15,
                "{}: measured median {:.1} vs paper {:.1}",
                row.name,
                row.median_ms,
                row.paper_median_ms
            );
        }
    }

    #[test]
    fn quantiles_ordered() {
        let result = run(7);
        for row in &result.rows {
            assert!(row.p5_ms <= row.median_ms && row.median_ms <= row.p95_ms);
        }
    }

    #[test]
    fn spec_and_trace_sources_report_called_functions() {
        use faas_workload::arrival::ArrivalSpec;
        use faas_workload::generate::WorkloadSpec;
        use faas_workload::mix::MixSpec;
        use faas_workload::synth::SynthSpec;
        use faas_workload::trace_source::TraceSpec;
        use faas_workload::weight::WeightSpec;
        // An equal-mix spec calls every function: all 11 rows appear with
        // ordered quantiles.
        let spec = WorkloadSource::Spec(WorkloadSpec {
            arrival: ArrivalSpec::Uniform { count: 110 },
            mix: MixSpec::Equal,
            weights: WeightSpec::Uniform,
            window: SimDuration::from_secs(600),
        });
        let r = run_source(&spec, 3).unwrap();
        assert_eq!(r.rows.len(), 11);
        for row in &r.rows {
            assert!(row.p5_ms <= row.median_ms && row.median_ms <= row.p95_ms);
        }
        // A synthetic trace reports exactly the functions it draws — a
        // Zipf tail function may legitimately be absent.
        let trace = WorkloadSource::Trace(TraceSpec::Synthetic(SynthSpec::azure(
            2.0,
            SimDuration::from_secs(60),
        )));
        let r = run_source(&trace, 3).unwrap();
        assert!(!r.rows.is_empty() && r.rows.len() <= 11);
        for row in &r.rows {
            assert!(row.p5_ms <= row.median_ms && row.median_ms <= row.p95_ms);
        }
    }

    #[test]
    fn render_contains_all_functions() {
        let result = run(1);
        let s = render(&result);
        for row in &result.rows {
            assert!(s.contains(&row.name));
        }
    }
}
