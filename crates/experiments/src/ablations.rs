//! Ablations of the design choices DESIGN.md calls out.
//!
//! These go beyond the paper's evaluation; they probe the hyper-parameters
//! the paper fixes by fiat:
//!
//! * **Estimation window** — the paper averages the 10 most recent
//!   processing times, citing its companion work \[18\] for "10 is enough".
//!   We sweep 1–50.
//! * **Fair-Choice window `T`** — the paper suggests 60 s.
//! * **Fair-Choice count semantics** — received vs concluded calls (two
//!   readings of §IV's definition; see `faas_core::FcCountMode`).
//! * **Network hop latency** — the constant controller/Kafka path the
//!   paper measures at ~10 ms round trip.
//! * **Busy-container limit** — the paper pins busy containers to the core
//!   count and flags the I/O-idle trade-off (§IV-A); we sweep the limit.

use crate::Effort;
use faas_core::{FcCountMode, Policy, SchedulerConfig};
use faas_invoker::{simulate_scenario, NodeConfig, NodeMode};
use faas_metrics::summary::MetricSummary;
use faas_metrics::table::{fmt_secs, TextTable};
use faas_simcore::time::SimDuration;
use faas_workload::scenario::BurstScenario;
use faas_workload::sebs::Catalogue;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// The mid-grid configuration every ablation runs on.
const CORES: u32 = 10;
const INTENSITY: u32 = 60;

/// One ablation data point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationPoint {
    /// Which knob and value, e.g. `estimate_window=10`.
    pub variant: String,
    /// Policy the knob applies to.
    pub policy: String,
    /// Pooled response-time statistics over the seeds.
    pub response: MetricSummary,
}

/// The ablation result set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationResult {
    /// All points, grouped by knob.
    pub points: Vec<AblationPoint>,
}

fn run_config(cfg: SchedulerConfig, node: &NodeConfig, seeds: &[u64]) -> MetricSummary {
    let catalogue = Catalogue::sebs();
    let mut pooled = Vec::new();
    for &seed in seeds {
        let scenario = BurstScenario::standard(CORES, INTENSITY).generate(&catalogue, seed);
        let result =
            simulate_scenario(&catalogue, &scenario, &NodeMode::Scheduled(cfg), node, seed);
        pooled.extend(result.measured().map(|o| o.response_time().as_secs_f64()));
    }
    MetricSummary::from_values(&pooled)
}

/// Run every ablation.
pub fn run(effort: Effort) -> AblationResult {
    let seeds = effort.seed_set();
    let node = NodeConfig::paper(CORES);

    // (variant label, policy, scheduler config, node config)
    let mut cases: Vec<(String, Policy, SchedulerConfig, NodeConfig)> = Vec::new();

    let windows: &[usize] = if effort.quick {
        &[1, 10]
    } else {
        &[1, 3, 5, 10, 20, 50]
    };
    for &w in windows {
        let mut cfg = SchedulerConfig::paper(Policy::Sept);
        cfg.estimate_window = w;
        cases.push((format!("estimate_window={w}"), Policy::Sept, cfg, node));
    }

    let fc_windows: &[u64] = if effort.quick { &[60] } else { &[15, 60, 240] };
    for &t in fc_windows {
        let mut cfg = SchedulerConfig::paper(Policy::FairChoice);
        cfg.fc_window = SimDuration::from_secs(t);
        cases.push((format!("fc_window={t}s"), Policy::FairChoice, cfg, node));
    }

    for (name, mode) in [
        ("fc_count=arrivals", FcCountMode::Arrivals),
        ("fc_count=completions", FcCountMode::Completions),
    ] {
        let mut cfg = SchedulerConfig::paper(Policy::FairChoice);
        cfg.fc_count_mode = mode;
        cases.push((name.to_string(), Policy::FairChoice, cfg, node));
    }

    let hops: &[u64] = if effort.quick { &[5] } else { &[0, 5, 25, 100] };
    for &ms in hops {
        let mut n = node;
        n.calibration.hop_request = SimDuration::from_millis(ms);
        n.calibration.hop_response = SimDuration::from_millis(ms);
        cases.push((
            format!("hop_one_way={ms}ms"),
            Policy::Sept,
            SchedulerConfig::paper(Policy::Sept),
            n,
        ));
    }

    let factors: &[f64] = if effort.quick {
        &[1.0]
    } else {
        &[1.0, 1.5, 2.0, 3.0]
    };
    for &f in factors {
        let n = node.with_busy_limit_factor(f);
        cases.push((
            format!("busy_limit_factor={f}"),
            Policy::Sept,
            SchedulerConfig::paper(Policy::Sept),
            n,
        ));
    }

    let points: Vec<AblationPoint> = cases
        .par_iter()
        .map(|(variant, policy, cfg, node)| AblationPoint {
            variant: variant.clone(),
            policy: policy.name().to_string(),
            response: run_config(*cfg, node, seeds),
        })
        .collect();

    AblationResult { points }
}

/// Render the ablation tables.
pub fn render(result: &AblationResult) -> String {
    let mut out = format!("Ablations ({CORES} cores, intensity {INTENSITY}, response time in s)\n");
    let mut t = TextTable::new(["variant", "policy", "R avg", "R p50", "R p95", "R p99"]);
    for p in &result.points {
        t.row([
            p.variant.clone(),
            p.policy.clone(),
            fmt_secs(p.response.mean),
            fmt_secs(p.response.p50),
            fmt_secs(p.response.p95),
            fmt_secs(p.response.p99),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "notes: estimate_window=10 is the paper's choice; fc_count=arrivals is our\n\
         default reading of SSIV (completions turns FC into fair queueing);\n\
         the hop sweep shows the constant network path only shifts responses;\n\
         busy_limit_factor=1.0 is the paper's one-container-per-core rule\n\
         (the oversubscription gains use a first-order contention model that\n\
         understates CPU interference; treat them as an upper bound).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> AblationResult {
        run(Effort {
            seeds: 1,
            quick: true,
        })
    }

    #[test]
    fn window_of_ten_is_no_worse_than_one() {
        let r = quick();
        let avg = |v: &str| {
            r.points
                .iter()
                .find(|p| p.variant == v)
                .unwrap()
                .response
                .mean
        };
        // The paper's choice must not lose to a single-sample estimator.
        assert!(avg("estimate_window=10") <= avg("estimate_window=1") * 1.25);
    }

    #[test]
    fn completion_counting_degrades_fc_median() {
        let r = run(Effort {
            seeds: 2,
            quick: true,
        });
        let p50 = |v: &str| {
            r.points
                .iter()
                .find(|p| p.variant == v)
                .unwrap()
                .response
                .p50
        };
        // Counting concluded calls equalises completed work per function
        // and destroys FC's SEPT-like medians (see DESIGN.md SS3.6).
        assert!(
            p50("fc_count=completions") > 5.0 * p50("fc_count=arrivals"),
            "completions {:.2} vs arrivals {:.2}",
            p50("fc_count=completions"),
            p50("fc_count=arrivals")
        );
    }

    #[test]
    fn render_lists_all_points() {
        let r = quick();
        let s = render(&r);
        for p in &r.points {
            assert!(s.contains(&p.variant));
        }
    }
}
