//! Static perf-trajectory dashboard: `experiments dashboard` →
//! `results/dashboard.html`.
//!
//! Renders a [`BenchHistory`](crate::bench_history::BenchHistory) as one
//! **self-contained** HTML page: every `*_speedup` (unit `x`) and
//! `*_calls_per_sec` (unit `calls/s`) series becomes a hand-rolled inline
//! SVG sparkline over commits, grouped per suite, with first/last/min/max
//! annotations and per-point commit tooltips. The full history JSON is
//! embedded in a `<script type="application/json">` block for downstream
//! tooling, so the page needs **no network access, no JavaScript and no
//! external assets** — it renders from `file://` on an air-gapped box,
//! like occlum/ngo's `window.BENCHMARK_DATA` page but without the CDN
//! chart library.
//!
//! Rendering is a pure function of the history document: no clocks, no
//! env, bit-identical output for identical input.

use crate::bench_history::{BenchHistory, HistoryPoint};

/// Sparkline geometry (CSS pixels).
const SPARK_W: f64 = 560.0;
const SPARK_H: f64 = 72.0;
const SPARK_PAD: f64 = 6.0;

/// One plotted series: the trajectory of a single entry name.
struct Series<'a> {
    name: &'a str,
    unit: &'a str,
    /// (commit id, commit message, value) per history point carrying it.
    points: Vec<(&'a str, &'a str, f64)>,
}

/// Escape text for HTML body/attribute positions.
fn escape_html(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            c => out.push(c),
        }
    }
    out
}

/// Short commit id for axis labels.
fn short_id(id: &str) -> &str {
    &id[..id.len().min(9)]
}

/// The series a suite's points contribute to the dashboard: every
/// `*_speedup` ratio and every `*_calls_per_sec` throughput, keyed by
/// entry name in first-appearance order.
fn collect_series<'a>(points: &'a [HistoryPoint]) -> Vec<Series<'a>> {
    let mut series: Vec<Series<'a>> = Vec::new();
    for p in points {
        for b in &p.benches {
            let plotted = (b.name.ends_with("_speedup") && b.unit == "x")
                || (b.name.ends_with("_calls_per_sec") && b.unit == "calls/s");
            if !plotted {
                continue;
            }
            let idx = series
                .iter()
                .position(|s| s.name == b.name)
                .unwrap_or_else(|| {
                    series.push(Series {
                        name: &b.name,
                        unit: &b.unit,
                        points: Vec::new(),
                    });
                    series.len() - 1
                });
            series[idx]
                .points
                .push((&p.commit.id, &p.commit.message, b.value));
        }
    }
    series
}

/// Compact value formatting: engineering-style for large magnitudes.
fn fmt_value(v: f64) -> String {
    let a = v.abs();
    if a >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if a >= 1e4 {
        format!("{:.1}k", v / 1e3)
    } else if a >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

/// A hand-rolled SVG sparkline: polyline over the points, min/max-scaled,
/// with a circle and `<title>` tooltip per point. Flat or single-point
/// series draw a centered horizontal line.
fn sparkline(points: &[(&str, &str, f64)]) -> String {
    let lo = points.iter().map(|p| p.2).fold(f64::INFINITY, f64::min);
    let hi = points.iter().map(|p| p.2).fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(f64::EPSILON);
    let flat = hi == lo;
    let n = points.len();
    let x = |i: usize| {
        if n <= 1 {
            SPARK_W / 2.0
        } else {
            SPARK_PAD + i as f64 * (SPARK_W - 2.0 * SPARK_PAD) / (n - 1) as f64
        }
    };
    let y = |v: f64| {
        if flat {
            SPARK_H / 2.0
        } else {
            SPARK_H - SPARK_PAD - (v - lo) / span * (SPARK_H - 2.0 * SPARK_PAD)
        }
    };
    let mut svg = format!(
        "<svg viewBox=\"0 0 {SPARK_W} {SPARK_H}\" width=\"{SPARK_W}\" height=\"{SPARK_H}\" \
         role=\"img\" xmlns=\"http://www.w3.org/2000/svg\">"
    );
    let coords: Vec<String> = points
        .iter()
        .enumerate()
        .map(|(i, p)| format!("{:.1},{:.1}", x(i), y(p.2)))
        .collect();
    if n > 1 {
        svg.push_str(&format!(
            "<polyline fill=\"none\" stroke=\"#2563eb\" stroke-width=\"1.5\" points=\"{}\"/>",
            coords.join(" ")
        ));
    }
    for (i, (id, msg, v)) in points.iter().enumerate() {
        let last = i + 1 == n;
        svg.push_str(&format!(
            "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"{}\" fill=\"{}\"><title>{} — {}: {}</title></circle>",
            x(i),
            y(*v),
            if last { 3.0 } else { 2.0 },
            if last { "#dc2626" } else { "#2563eb" },
            escape_html(short_id(id)),
            escape_html(msg),
            fmt_value(*v),
        ));
    }
    svg.push_str("</svg>");
    svg
}

/// JSON safe to inline in a `<script>` block: `<` escaped so a commit
/// message can never close the tag early.
fn embeddable_json(history: &BenchHistory) -> String {
    serde_json::to_string(history)
        .expect("history serialization is infallible")
        .replace('<', "\\u003c")
}

/// Render the whole dashboard page.
pub fn render(history: &BenchHistory) -> String {
    let mut out = String::from(
        "<!doctype html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
         <meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">\n\
         <title>Perf trajectory</title>\n<style>\n\
         body{font:14px/1.5 system-ui,sans-serif;margin:2rem auto;max-width:72rem;\
         padding:0 1rem;color:#111827;background:#fff}\n\
         h1{font-size:1.4rem} h2{font-size:1.1rem;margin:2rem 0 .5rem;\
         border-bottom:1px solid #e5e7eb;padding-bottom:.25rem}\n\
         .series{display:grid;grid-template-columns:minmax(16rem,1fr) auto;gap:.25rem 1rem;\
         align-items:center;padding:.4rem 0;border-bottom:1px dotted #e5e7eb}\n\
         .meta{color:#374151} .meta b{color:#111827;font-variant-numeric:tabular-nums}\n\
         .name{font-family:ui-monospace,monospace;font-size:.85rem}\n\
         .unit{color:#6b7280}\n\
         </style>\n</head>\n<body>\n",
    );
    out.push_str(&format!(
        "<h1>Perf trajectory</h1>\n<p class=\"meta\">{} suite(s), {} history point(s); \
         last update {}.</p>\n",
        history.series.len(),
        history.depth(),
        escape_html(if history.last_update.is_empty() {
            "(never)"
        } else {
            &history.last_update
        }),
    ));
    for (suite, points) in &history.series {
        let series = collect_series(points);
        if series.is_empty() {
            continue;
        }
        out.push_str(&format!("<h2>{}</h2>\n", escape_html(suite)));
        for s in series {
            let first = s.points.first().expect("collected series are non-empty");
            let last = s.points.last().expect("collected series are non-empty");
            let lo = s.points.iter().map(|p| p.2).fold(f64::INFINITY, f64::min);
            let hi = s
                .points
                .iter()
                .map(|p| p.2)
                .fold(f64::NEG_INFINITY, f64::max);
            out.push_str(&format!(
                "<div class=\"series\" data-series=\"{name}\">\n\
                 <div><div class=\"name\">{name} <span class=\"unit\">[{unit}]</span></div>\n\
                 <div class=\"meta\">last <b>{last_v}</b> @ {last_c} · first {first_v} · \
                 min {min_v} · max {max_v} · {n} pt(s)</div></div>\n{svg}\n</div>\n",
                name = escape_html(s.name),
                unit = escape_html(s.unit),
                last_v = fmt_value(last.2),
                last_c = escape_html(short_id(last.0)),
                first_v = fmt_value(first.2),
                min_v = fmt_value(lo),
                max_v = fmt_value(hi),
                n = s.points.len(),
                svg = sparkline(&s.points),
            ));
        }
    }
    out.push_str(&format!(
        "<script id=\"history\" type=\"application/json\">{}</script>\n</body>\n</html>\n",
        embeddable_json(history)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_gps::BenchEntry;
    use crate::bench_history::{CommitMeta, HistoryPoint};

    fn entry(name: &str, value: f64, unit: &str) -> BenchEntry {
        BenchEntry {
            name: name.into(),
            value,
            unit: unit.into(),
        }
    }

    fn point(id: &str, scale: f64) -> HistoryPoint {
        HistoryPoint {
            commit: CommitMeta {
                id: id.into(),
                message: format!("msg <{id}> & \"quotes\""),
                timestamp: format!("2026-08-0{id}T00:00:00+00:00"),
            },
            benches: vec![
                entry("gps_churn_n16_speedup", 4.0 * scale, "x"),
                entry("gps_churn_n16_virtual_time", 100.0 / scale, "ns/iter"),
                entry("replay_c1e6_calls_per_sec", 6.0e5 * scale, "calls/s"),
                entry("gps_threads", 1.0, "count"),
            ],
        }
    }

    fn two_point_history() -> BenchHistory {
        let mut h = BenchHistory::new();
        h.last_update = "2026-08-02T00:00:00+00:00".into();
        h.series
            .push(("gps".into(), vec![point("1", 1.0), point("2", 1.1)]));
        h
    }

    #[test]
    fn renders_one_series_per_speedup_and_throughput_entry() {
        let html = render(&two_point_history());
        assert!(
            html.contains("data-series=\"gps_churn_n16_speedup\""),
            "{html}"
        );
        assert!(
            html.contains("data-series=\"replay_c1e6_calls_per_sec\""),
            "{html}"
        );
        // Timing and count entries are inputs to the gate, not dashboard
        // series of their own.
        assert!(!html.contains("data-series=\"gps_churn_n16_virtual_time\""));
        assert!(!html.contains("data-series=\"gps_threads\""));
        // Two points ⇒ a polyline plus per-point markers.
        assert!(html.contains("<polyline"), "{html}");
        assert_eq!(html.matches("<circle").count(), 4);
    }

    #[test]
    fn page_is_self_contained() {
        let html = render(&two_point_history());
        // No external fetches of any kind: the only URL-looking string is
        // the SVG namespace identifier, which browsers never dereference.
        let externals = html.matches("http").count();
        assert_eq!(
            externals,
            html.matches("http://www.w3.org/2000/svg").count(),
            "unexpected external reference in dashboard"
        );
        assert!(!html.contains("<link"), "external stylesheet");
        assert!(!html.contains("src="), "external script/image");
        // The raw history is embedded for downstream tooling, with `<`
        // escaped so commit messages cannot break out of the script block.
        assert!(html.contains("type=\"application/json\""));
        assert!(html.contains("\\u003c1>"), "commit message `<` unescaped");
    }

    #[test]
    fn tooltip_text_is_html_escaped_including_apostrophes() {
        assert_eq!(
            escape_html(r#"don't <b>&"x"</b>"#),
            "don&#39;t &lt;b&gt;&amp;&quot;x&quot;&lt;/b&gt;"
        );
        // A commit message with an apostrophe lands in a <title> tooltip;
        // it must arrive escaped so it can never terminate a single-quoted
        // attribute in downstream embeddings of the SVG.
        let mut p = point("1", 1.0);
        p.commit.message = "don't regress".into();
        let mut h = BenchHistory::new();
        h.series.push(("gps".into(), vec![p]));
        let html = render(&h);
        assert!(html.contains("don&#39;t regress"), "{html}");
    }

    #[test]
    fn single_point_and_flat_series_render_without_division_blowups() {
        let mut h = BenchHistory::new();
        h.series.push(("gps".into(), vec![point("1", 1.0)]));
        let html = render(&h);
        assert!(html.contains("data-series=\"gps_churn_n16_speedup\""));
        assert!(!html.contains("NaN"), "{html}");
        assert!(!html.contains("inf"), "{html}");
        // Flat two-point series (identical values) also stay finite.
        let mut flat = BenchHistory::new();
        flat.series
            .push(("gps".into(), vec![point("1", 1.0), point("2", 1.0)]));
        let html = render(&flat);
        assert!(!html.contains("NaN"), "{html}");
    }

    #[test]
    fn suites_without_plottable_series_are_omitted() {
        let mut h = BenchHistory::new();
        h.series.push((
            "only_timings".into(),
            vec![HistoryPoint {
                commit: CommitMeta {
                    id: "1".into(),
                    message: "m".into(),
                    timestamp: "t".into(),
                },
                benches: vec![entry("a_wall", 1.0, "ms/run")],
            }],
        ));
        let html = render(&h);
        assert!(!html.contains("<h2>only_timings</h2>"));
    }
}
