//! Durable perf-trajectory history: `BENCH_HISTORY.json`.
//!
//! Each `experiments bench` run writes seven point-in-time `BENCH_*.json`
//! artifacts; this module makes the trajectory durable across commits by
//! folding them into one **versioned, append-only** history document in
//! the `github-action-benchmark` / `window.BENCHMARK_DATA` shape
//! (occlum/ngo's `dev/benchmarks/data.js` is the exemplar): per-commit
//! points keyed by benchmark suite, appended forever, rendered as a
//! static dashboard ([`crate::dashboard`]).
//!
//! ## File format (version 1)
//!
//! ```json
//! {
//!   "version": 1,
//!   "lastUpdate": "2026-08-08T15:59:01+00:00",
//!   "entries": {
//!     "gps": [
//!       {
//!         "commit": {"id": "46ff445…", "message": "…", "timestamp": "…"},
//!         "benches": [{"name": "gps_churn_n16_speedup", "value": 4.1, "unit": "x"}, …]
//!       },
//!       …one object per appended commit, oldest first…
//!     ],
//!     "events": […], "replay": […], …
//!   }
//! }
//! ```
//!
//! Suites are keyed by the artifact file name with the `BENCH_` prefix and
//! `.json` suffix stripped. A document without a `version` field is
//! accepted as the legacy (v0) pre-versioned shape and upgraded on load;
//! a version newer than [`HISTORY_VERSION`] is refused so an old tool
//! never silently drops fields it does not understand.
//!
//! Commit id/message/timestamp arrive via [`CommitMeta`] — populated from
//! CLI flags or `GITHUB_SHA` by the binary. Library code never reads
//! ambient state (no clocks, no env), so append/gate/render are
//! deterministic and testable.
//!
//! ## Regression gate
//!
//! [`gate_dir`] compares the current artifacts under a results directory
//! against the **rolling median of the last [`GateConfig::window`] history
//! points** per entry:
//!
//! * timing entries ([`crate::bench_schema::TIMING_UNITS`]) fail when they
//!   exceed the median by more than `timing_regress_pct` (default
//!   [`DEFAULT_TIMING_REGRESS_PCT`]%);
//! * `calls/s` throughput entries fail when they drop below the median by
//!   more than `throughput_drop_pct` (default
//!   [`DEFAULT_THROUGHPUT_DROP_PCT`]%);
//! * count-style units (`count`, `calls`, …) and derived ratios (`x`) are
//!   exempt — ratios would double-count their timing pair, counts are not
//!   noise-distributed;
//! * per-unit overrides tighten or loosen individual units without code
//!   changes, and an entry with no history (first run, renamed series, a
//!   missing baseline file) is skipped rather than failed.
//!
//! Values **exactly at** the threshold pass; the gate trips on strict
//! violation only, so an unchanged rerun against its own history is
//! always green. On intentional perf changes, merge once with the gate
//! step's thresholds raised (`--gate-timing-pct` / `--gate-throughput-pct`
//! in CI) or reset the cached history; the next append re-baselines the
//! rolling median.

use crate::bench_gps::BenchEntry;
use crate::bench_schema::{self, TIMING_UNITS};
use serde::{Deserialize, Serialize, Value};
use std::path::Path;

/// File name of the append-only history document.
pub const HISTORY_FILE: &str = "BENCH_HISTORY.json";

/// Current history format version.
pub const HISTORY_VERSION: i64 = 1;

/// Default rolling-median window (history points per entry).
pub const DEFAULT_GATE_WINDOW: usize = 5;

/// Default allowed timing regression over the rolling median, percent.
/// Wall-clock medians on shared CI runners jitter tens of percent; 50%
/// still catches a 2x regression with margin.
pub const DEFAULT_TIMING_REGRESS_PCT: f64 = 50.0;

/// Default allowed `calls/s` drop below the rolling median, percent.
pub const DEFAULT_THROUGHPUT_DROP_PCT: f64 = 40.0;

/// Commit identity stamped on every appended history point. Populated by
/// the CLI (flags or `GITHUB_SHA`), never from ambient state in here.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommitMeta {
    /// Commit id (full or abbreviated SHA).
    pub id: String,
    /// Commit subject line.
    pub message: String,
    /// Commit timestamp, ISO-8601 as produced by `git log --pretty=%cI`.
    pub timestamp: String,
}

/// One per-commit point of one suite's trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistoryPoint {
    /// The commit this point was measured at.
    pub commit: CommitMeta,
    /// The suite's full entry list at that commit.
    pub benches: Vec<BenchEntry>,
}

/// The append-only trajectory: per-suite point lists, oldest first.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchHistory {
    /// Format version ([`HISTORY_VERSION`] after load).
    pub version: i64,
    /// Timestamp of the newest append (the commit's, not the machine's).
    pub last_update: String,
    /// Suite key → points, insertion-ordered.
    pub series: Vec<(String, Vec<HistoryPoint>)>,
}

impl Serialize for BenchHistory {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("version".into(), Value::Int(self.version as i128)),
            ("lastUpdate".into(), Value::Str(self.last_update.clone())),
            (
                "entries".into(),
                Value::Map(
                    self.series
                        .iter()
                        .map(|(key, points)| (key.clone(), points.to_value()))
                        .collect(),
                ),
            ),
        ])
    }
}

impl Deserialize for BenchHistory {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let map = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("history: expected an object"))?;
        // No `version` field = the legacy pre-versioned (v0) shape; it is
        // upgraded in place. Anything newer than this tool is refused.
        let version = match serde::get_field(map, "version") {
            Ok(Value::Int(i)) => *i as i64,
            Ok(_) => return Err(serde::Error::custom("history: non-integer version")),
            Err(_) => 0,
        };
        if version > HISTORY_VERSION {
            return Err(serde::Error::custom(format!(
                "history: version {version} is newer than this tool understands \
                 ({HISTORY_VERSION}); refusing to load and silently drop fields"
            )));
        }
        let last_update = match serde::get_field(map, "lastUpdate") {
            Ok(v) => String::from_value(v)?,
            Err(_) => String::new(),
        };
        let entries = serde::get_field(map, "entries")?
            .as_map()
            .ok_or_else(|| serde::Error::custom("history: `entries` is not an object"))?;
        let mut series = Vec::with_capacity(entries.len());
        for (key, points) in entries {
            series.push((key.clone(), Vec::<HistoryPoint>::from_value(points)?));
        }
        Ok(BenchHistory {
            version: HISTORY_VERSION,
            last_update,
            series,
        })
    }
}

/// The suite key an artifact file folds into: `BENCH_gps.json` → `gps`.
pub fn artifact_key(file_name: &str) -> String {
    file_name
        .strip_prefix("BENCH_")
        .unwrap_or(file_name)
        .strip_suffix(".json")
        .unwrap_or(file_name)
        .to_string()
}

impl Default for BenchHistory {
    fn default() -> Self {
        Self::new()
    }
}

impl BenchHistory {
    /// An empty current-version history.
    pub fn new() -> Self {
        BenchHistory {
            version: HISTORY_VERSION,
            last_update: String::new(),
            series: Vec::new(),
        }
    }

    /// Load a history file; a missing file is an empty history (the first
    /// run has no trajectory yet), a malformed or future-versioned file is
    /// an error.
    pub fn load_or_empty(path: &Path) -> Result<Self, String> {
        match faas_metrics::export::read_json(path) {
            Ok(h) => Ok(h),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Self::new()),
            Err(e) => Err(format!("{}: {e}", path.display())),
        }
    }

    /// Write the history as pretty JSON at `path`.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        faas_metrics::export::write_json(path, self).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// The points of one suite, if present.
    pub fn points(&self, key: &str) -> Option<&[HistoryPoint]> {
        self.series
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, p)| p.as_slice())
    }

    /// Fold every `BENCH_*.json` artifact under `dir` into one new
    /// history point per suite, stamped with `commit`. The directory is
    /// schema-validated first (canonical seven present, shapes sound), so
    /// a broken artifact never enters the durable trajectory. Returns the
    /// appended suite keys.
    pub fn append(&mut self, dir: &Path, commit: &CommitMeta) -> Result<Vec<String>, String> {
        let files = bench_schema::validate_dir(dir)?;
        let mut appended = Vec::with_capacity(files.len());
        for file_name in files {
            let path = dir.join(&file_name);
            let benches: Vec<BenchEntry> = faas_metrics::export::read_json(&path)
                .map_err(|e| format!("{}: {e}", path.display()))?;
            let key = artifact_key(&file_name);
            let point = HistoryPoint {
                commit: commit.clone(),
                benches,
            };
            match self.series.iter_mut().find(|(k, _)| *k == key) {
                Some((_, points)) => points.push(point),
                None => self.series.push((key.clone(), vec![point])),
            }
            appended.push(key);
        }
        self.last_update = commit.timestamp.clone();
        Ok(appended)
    }

    /// Number of points in the longest suite series.
    pub fn depth(&self) -> usize {
        self.series.iter().map(|(_, p)| p.len()).max().unwrap_or(0)
    }
}

/// Regression-gate thresholds. See the module docs for semantics.
#[derive(Debug, Clone)]
pub struct GateConfig {
    /// Rolling-median window: last K history points per entry.
    pub window: usize,
    /// Allowed timing regression over the rolling median, percent.
    pub timing_regress_pct: f64,
    /// Allowed `calls/s` drop below the rolling median, percent.
    pub throughput_drop_pct: f64,
    /// Per-unit percentage overrides, e.g. `("ms/run", 80.0)` to loosen
    /// end-to-end wall timings while keeping `ns/iter` kernels tight.
    pub unit_overrides: Vec<(String, f64)>,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            window: DEFAULT_GATE_WINDOW,
            timing_regress_pct: DEFAULT_TIMING_REGRESS_PCT,
            throughput_drop_pct: DEFAULT_THROUGHPUT_DROP_PCT,
            unit_overrides: Vec::new(),
        }
    }
}

impl GateConfig {
    fn threshold_pct(&self, unit: &str, class_default: f64) -> f64 {
        self.unit_overrides
            .iter()
            .find(|(u, _)| u == unit)
            .map(|(_, pct)| *pct)
            .unwrap_or(class_default)
    }
}

/// One named, per-entry gate failure.
#[derive(Debug, Clone, PartialEq)]
pub struct GateViolation {
    /// Suite key (`gps`, `replay`, …).
    pub suite: String,
    /// Entry name that regressed.
    pub entry: String,
    /// The entry's unit.
    pub unit: String,
    /// Current value.
    pub value: f64,
    /// Rolling median it was compared against.
    pub baseline: f64,
    /// History points behind the median.
    pub points: usize,
    /// Threshold percentage that was exceeded.
    pub limit_pct: f64,
    /// `"timing regression"` or `"throughput drop"`.
    pub kind: &'static str,
}

impl std::fmt::Display for GateViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{}: {} — {:.3} {} vs rolling median {:.3} over {} point(s), limit {}%",
            self.suite,
            self.entry,
            self.kind,
            self.value,
            self.unit,
            self.baseline,
            self.points,
            self.limit_pct
        )
    }
}

/// Median of a non-empty slice (average of the middle pair when even).
fn median(values: &mut [f64]) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("bench values are finite"));
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

/// Gate one suite's current entries against its history series. Entries
/// with no history points are skipped (first run / renamed series).
pub fn gate_entries(
    cfg: &GateConfig,
    history: &BenchHistory,
    suite: &str,
    entries: &[BenchEntry],
) -> Vec<GateViolation> {
    let Some(points) = history.points(suite) else {
        return Vec::new();
    };
    let mut violations = Vec::new();
    for e in entries {
        let is_timing = TIMING_UNITS.contains(&e.unit.as_str());
        let is_throughput = e.unit == "calls/s";
        if !is_timing && !is_throughput {
            continue;
        }
        let mut past: Vec<f64> = points
            .iter()
            .rev()
            .filter_map(|p| {
                p.benches
                    .iter()
                    .find(|b| b.name == e.name && b.unit == e.unit)
                    .map(|b| b.value)
            })
            .take(cfg.window)
            .collect();
        if past.is_empty() {
            continue;
        }
        let n = past.len();
        let baseline = median(&mut past);
        if is_timing {
            let pct = cfg.threshold_pct(&e.unit, cfg.timing_regress_pct);
            let limit = baseline * (1.0 + pct / 100.0);
            if e.value > limit {
                violations.push(GateViolation {
                    suite: suite.to_string(),
                    entry: e.name.clone(),
                    unit: e.unit.clone(),
                    value: e.value,
                    baseline,
                    points: n,
                    limit_pct: pct,
                    kind: "timing regression",
                });
            }
        } else {
            let pct = cfg.threshold_pct(&e.unit, cfg.throughput_drop_pct);
            let limit = baseline * (1.0 - pct / 100.0);
            if e.value < limit {
                violations.push(GateViolation {
                    suite: suite.to_string(),
                    entry: e.name.clone(),
                    unit: e.unit.clone(),
                    value: e.value,
                    baseline,
                    points: n,
                    limit_pct: pct,
                    kind: "throughput drop",
                });
            }
        }
    }
    violations
}

/// Gate every `BENCH_*.json` under `dir` against `history`. Returns the
/// violations plus the number of (suite, entry) pairs actually compared —
/// 0 compared on an empty/missing baseline is a pass, not an error.
pub fn gate_dir(
    cfg: &GateConfig,
    history: &BenchHistory,
    dir: &Path,
) -> Result<(Vec<GateViolation>, usize), String> {
    let files = bench_schema::validate_dir(dir)?;
    let mut violations = Vec::new();
    let mut compared = 0usize;
    for file_name in files {
        let path = dir.join(&file_name);
        let entries: Vec<BenchEntry> = faas_metrics::export::read_json(&path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        let key = artifact_key(&file_name);
        if let Some(points) = history.points(&key) {
            compared += entries
                .iter()
                .filter(|e| {
                    (TIMING_UNITS.contains(&e.unit.as_str()) || e.unit == "calls/s")
                        && points
                            .iter()
                            .any(|p| p.benches.iter().any(|b| b.name == e.name))
                })
                .count();
        }
        violations.extend(gate_entries(cfg, history, &key, &entries));
    }
    Ok((violations, compared))
}

/// Render violations as the named, per-entry report CI prints.
pub fn render_violations(violations: &[GateViolation]) -> String {
    let mut out = format!("perf regression gate: {} violation(s)\n", violations.len());
    for v in violations {
        out.push_str(&format!("  {v}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, value: f64, unit: &str) -> BenchEntry {
        BenchEntry {
            name: name.into(),
            value,
            unit: unit.into(),
        }
    }

    fn meta(id: &str) -> CommitMeta {
        CommitMeta {
            id: id.into(),
            message: format!("commit {id}"),
            timestamp: format!("2026-08-0{id}T00:00:00+00:00"),
        }
    }

    fn suite(values: &[f64]) -> Vec<HistoryPoint> {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| HistoryPoint {
                commit: meta(&format!("{}", i + 1)),
                benches: vec![
                    entry("k_n10_candidate", v, "ns/iter"),
                    entry("k_rate", 1000.0, "calls/s"),
                ],
            })
            .collect()
    }

    fn history_with(values: &[f64]) -> BenchHistory {
        let mut h = BenchHistory::new();
        h.series.push(("k".into(), suite(values)));
        h
    }

    #[test]
    fn history_round_trips_through_json() {
        let mut h = history_with(&[100.0, 110.0]);
        h.last_update = "2026-08-08T00:00:00+00:00".into();
        let text = serde_json::to_string_pretty(&h).unwrap();
        let back: BenchHistory = serde_json::from_str(&text).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.version, HISTORY_VERSION);
        assert_eq!(back.depth(), 2);
    }

    #[test]
    fn legacy_unversioned_history_is_upgraded_on_load() {
        // v0: no version/lastUpdate wrapper fields, same entries map.
        let v0 = r#"{"entries": {"k": [{"commit": {"id": "a", "message": "m",
            "timestamp": "t"}, "benches": [{"name": "k_n10_candidate",
            "value": 100.0, "unit": "ns/iter"}]}]}}"#;
        let h: BenchHistory = serde_json::from_str(v0).unwrap();
        assert_eq!(h.version, HISTORY_VERSION);
        assert_eq!(h.points("k").unwrap().len(), 1);
        assert_eq!(h.points("k").unwrap()[0].commit.id, "a");
    }

    #[test]
    fn future_version_is_refused() {
        let v9 = r#"{"version": 9, "lastUpdate": "", "entries": {}}"#;
        let err = serde_json::from_str::<BenchHistory>(v9).unwrap_err();
        assert!(err.to_string().contains("newer"), "{err}");
    }

    #[test]
    fn load_or_empty_tolerates_a_missing_file() {
        let h = BenchHistory::load_or_empty(Path::new("/nonexistent/BENCH_HISTORY.json")).unwrap();
        assert_eq!(h.depth(), 0);
    }

    #[test]
    fn artifact_keys_strip_the_wrapper() {
        assert_eq!(artifact_key("BENCH_gps.json"), "gps");
        assert_eq!(artifact_key("BENCH_weighted_gps.json"), "weighted_gps");
    }

    #[test]
    fn gate_trips_on_injected_regression_and_passes_at_the_boundary() {
        let cfg = GateConfig::default();
        let history = history_with(&[100.0, 100.0, 100.0]);
        // 2x injected regression: 200 > 100 * 1.5 → named violation.
        let bad = [entry("k_n10_candidate", 200.0, "ns/iter")];
        let v = gate_entries(&cfg, &history, "k", &bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].entry, "k_n10_candidate");
        assert_eq!(v[0].kind, "timing regression");
        assert_eq!(v[0].baseline, 100.0);
        assert_eq!(v[0].points, 3);
        assert!(render_violations(&v).contains("k_n10_candidate"));
        // Exactly at the 50% limit: passes (strict violation only).
        let boundary = [entry("k_n10_candidate", 150.0, "ns/iter")];
        assert!(gate_entries(&cfg, &history, "k", &boundary).is_empty());
        // Unchanged rerun: passes.
        let same = [entry("k_n10_candidate", 100.0, "ns/iter")];
        assert!(gate_entries(&cfg, &history, "k", &same).is_empty());
    }

    #[test]
    fn gate_trips_on_throughput_drop_but_not_at_the_boundary() {
        let cfg = GateConfig::default();
        let history = history_with(&[100.0]);
        // calls/s median is 1000; 40% drop limit is 600.
        let ok = [entry("k_rate", 600.0, "calls/s")];
        assert!(gate_entries(&cfg, &history, "k", &ok).is_empty());
        let bad = [entry("k_rate", 599.0, "calls/s")];
        let v = gate_entries(&cfg, &history, "k", &bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, "throughput drop");
    }

    #[test]
    fn gate_uses_a_rolling_median_window() {
        let cfg = GateConfig {
            window: 2,
            ..GateConfig::default()
        };
        // Old slow points fall outside the window: the median over the
        // last 2 ([100, 100]) gates, not the ancient 1000s.
        let history = history_with(&[1000.0, 1000.0, 1000.0, 100.0, 100.0]);
        let bad = [entry("k_n10_candidate", 200.0, "ns/iter")];
        let v = gate_entries(&cfg, &history, "k", &bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].baseline, 100.0);
        assert_eq!(v[0].points, 2);
        // A wider window reaching back to the slow majority shifts the
        // median up to 1000 and the same value passes.
        let wide = GateConfig {
            window: 5,
            ..GateConfig::default()
        };
        assert!(gate_entries(&wide, &history, "k", &bad).is_empty());
    }

    #[test]
    fn count_units_and_unknown_entries_are_exempt() {
        let cfg = GateConfig::default();
        let history = history_with(&[100.0]);
        let entries = [
            entry("k_peak_resident", 0.0, "calls"),
            entry("k_n10_speedup", 0.01, "x"),
            entry("brand_new_timing", 1e12, "ns/iter"),
        ];
        // Counts/ratios exempt; the new timing has no history → skipped.
        assert!(gate_entries(&cfg, &history, "k", &entries).is_empty());
        // Unknown suite entirely: skipped.
        assert!(gate_entries(&cfg, &history, "other", &entries).is_empty());
    }

    #[test]
    fn per_unit_overrides_take_precedence() {
        let cfg = GateConfig {
            unit_overrides: vec![("ns/iter".into(), 150.0)],
            ..GateConfig::default()
        };
        let history = history_with(&[100.0]);
        // 2x is within the loosened 150% allowance…
        let two_x = [entry("k_n10_candidate", 200.0, "ns/iter")];
        assert!(gate_entries(&cfg, &history, "k", &two_x).is_empty());
        // …but 2.6x is not.
        let worse = [entry("k_n10_candidate", 260.0, "ns/iter")];
        assert_eq!(gate_entries(&cfg, &history, "k", &worse).len(), 1);
    }

    #[test]
    fn empty_history_gates_nothing() {
        let (violations, compared) = {
            let dir = std::env::temp_dir().join("bench_history_empty_gate");
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            write_canonical_artifacts(&dir, 1.0);
            let r = gate_dir(&GateConfig::default(), &BenchHistory::new(), &dir).unwrap();
            let _ = std::fs::remove_dir_all(&dir);
            r
        };
        assert!(violations.is_empty());
        assert_eq!(compared, 0);
    }

    /// Write the canonical seven artifacts with timings scaled by
    /// `scale` (so a 2x scale is a 2x timing regression everywhere).
    pub(crate) fn write_canonical_artifacts(dir: &Path, scale: f64) {
        for name in bench_schema::EXPECTED_ARTIFACTS {
            let mut entries = vec![
                entry("k_n10_candidate", 120.0 * scale, "ns/iter"),
                entry("k_n10_reference", 360.0 * scale, "ns/iter"),
                entry("k_n10_speedup", 3.0, "x"),
                entry("k_threads", 1.0, "count"),
            ];
            if name.contains("replay") {
                entries.push(entry("k_c1000_calls_per_sec", 2.5e6 / scale, "calls/s"));
            }
            faas_metrics::export::write_json(&dir.join(name), &entries).unwrap();
        }
    }

    #[test]
    fn append_folds_the_artifact_directory_and_survives_a_save_load_cycle() {
        let dir = std::env::temp_dir().join("bench_history_append_dir");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        write_canonical_artifacts(&dir, 1.0);

        let mut h = BenchHistory::new();
        let keys = h.append(&dir, &meta("1")).unwrap();
        assert_eq!(keys.len(), bench_schema::EXPECTED_ARTIFACTS.len());
        h.append(&dir, &meta("2")).unwrap();
        assert_eq!(h.depth(), 2);
        assert_eq!(h.last_update, meta("2").timestamp);
        assert_eq!(h.points("gps").unwrap().len(), 2);
        assert_eq!(h.points("replay").unwrap()[1].commit.id, "2");

        let path = dir.join(HISTORY_FILE);
        h.save(&path).unwrap();
        let back = BenchHistory::load_or_empty(&path).unwrap();
        assert_eq!(back, h);

        // The history file sitting in the artifact dir does not break a
        // subsequent append (validate_dir skips it).
        h.append(&dir, &meta("3")).unwrap();
        assert_eq!(h.depth(), 3);

        // End to end: gate the same dir against its own history (pass),
        // then against a history of 2x-faster runs (every timing and the
        // throughput entry trips, per artifact).
        let (violations, compared) = gate_dir(&GateConfig::default(), &h, &dir).unwrap();
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(
            compared,
            // 2 timings per artifact + 1 calls/s in the replay artifact.
            2 * bench_schema::EXPECTED_ARTIFACTS.len() + 1
        );
        let mut fast = BenchHistory::new();
        let fast_dir = std::env::temp_dir().join("bench_history_append_dir_fast");
        let _ = std::fs::remove_dir_all(&fast_dir);
        std::fs::create_dir_all(&fast_dir).unwrap();
        write_canonical_artifacts(&fast_dir, 0.5);
        fast.append(&fast_dir, &meta("1")).unwrap();
        let (violations, _) = gate_dir(&GateConfig::default(), &fast, &dir).unwrap();
        assert_eq!(
            violations.len(),
            2 * bench_schema::EXPECTED_ARTIFACTS.len() + 1,
            "{}",
            render_violations(&violations)
        );
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&fast_dir);
    }

    #[test]
    fn append_refuses_a_broken_artifact_directory() {
        let dir = std::env::temp_dir().join("bench_history_append_broken");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // Only one artifact: the canonical-set check refuses the append,
        // so a partial bench run never pollutes the durable trajectory.
        faas_metrics::export::write_json(
            &dir.join("BENCH_gps.json"),
            &vec![
                entry("k_n10_candidate", 120.0, "ns/iter"),
                entry("k_n10_reference", 360.0, "ns/iter"),
                entry("k_n10_speedup", 3.0, "x"),
                entry("k_threads", 1.0, "count"),
            ],
        )
        .unwrap();
        let mut h = BenchHistory::new();
        let err = h.append(&dir, &meta("1")).unwrap_err();
        assert!(err.contains("missing canonical artifact"), "{err}");
        assert_eq!(h.depth(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
