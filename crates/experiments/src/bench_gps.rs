//! GPS-kernel performance trajectory: `experiments bench`.
//!
//! Times the virtual-time `GpsCpu` against the seed reference integrator on
//! the completion-driven churn workload (the baseline invoker's access
//! pattern) at increasing oversubscription, plus one end-to-end
//! baseline-node run, and writes the numbers as `BENCH_gps.json` in the
//! `{"name", "value", "unit"}` entry style used by continuous-benchmark
//! dashboards (occlum/ngo's `data.js`), so successive PRs accumulate a
//! perf trajectory.

use faas_cpu::bench_support::{churn_params, run_churn};
use faas_cpu::{GpsCpu, ReferenceGpsCpu};
use faas_invoker::{simulate_scenario, NodeConfig, NodeMode};
use faas_workload::scenario::BurstScenario;
use faas_workload::sebs::Catalogue;
use serde::{Deserialize, Serialize};

/// One dashboard data point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchEntry {
    /// Stable metric name (dashboards key on it across commits).
    pub name: String,
    /// Measured value.
    pub value: f64,
    /// Unit string, e.g. `"ns/iter"` or `"x"`.
    pub unit: String,
}

/// Concurrency levels benchmarked (n tasks on 10 cores; n >> cores is the
/// paper's stressed baseline regime).
const CHURN_TASKS: [usize; 3] = [16, 64, 512];
const CHURN_COMPLETIONS: usize = 2_000;
const SAMPLES: usize = 7;

/// Run the GPS micro-benchmarks and the end-to-end baseline-node benchmark.
pub fn run() -> Vec<BenchEntry> {
    let mut entries = Vec::new();
    for tasks in CHURN_TASKS {
        let optimized = crate::median_ns(SAMPLES, || {
            let mut kernel = GpsCpu::new(churn_params(10.0));
            run_churn(&mut kernel, tasks, CHURN_COMPLETIONS)
        });
        let reference = crate::median_ns(SAMPLES, || {
            let mut kernel = ReferenceGpsCpu::new(churn_params(10.0));
            run_churn(&mut kernel, tasks, CHURN_COMPLETIONS)
        });
        entries.push(BenchEntry {
            name: format!("gps_churn_n{tasks}_virtual_time"),
            value: optimized,
            unit: "ns/iter".into(),
        });
        entries.push(BenchEntry {
            name: format!("gps_churn_n{tasks}_reference"),
            value: reference,
            unit: "ns/iter".into(),
        });
        entries.push(BenchEntry {
            name: format!("gps_churn_n{tasks}_speedup"),
            value: reference / optimized,
            unit: "x".into(),
        });
    }

    // End-to-end: one baseline-mode node at the top of the intensity grid,
    // where the GPS bank holds hundreds of containers.
    let catalogue = Catalogue::sebs();
    let scenario = BurstScenario::standard(10, 90).generate(&catalogue, 42);
    let node = NodeConfig::paper(10);
    let wall = crate::median_ns(SAMPLES, || {
        let result = simulate_scenario(&catalogue, &scenario, &NodeMode::Baseline, &node, 42);
        result.outcomes.len() as f64
    });
    entries.push(BenchEntry {
        name: "baseline_node_c10_v90_wall".into(),
        value: wall / 1e6,
        unit: "ms/run".into(),
    });
    // The kernels are single-threaded; the host parallelism is recorded so
    // trajectory points stay attributable to their machine shape (and the
    // check-bench schema requires it of every artifact).
    entries.push(BenchEntry {
        name: "gps_threads".into(),
        value: host_threads(),
        unit: "count".into(),
    });
    entries
}

/// The host's available parallelism, shared by the bench modules' thread
/// stamp entries.
pub(crate) fn host_threads() -> f64 {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1) as f64
}

/// Human-readable rendering of the entries.
pub fn render(entries: &[BenchEntry]) -> String {
    let mut out = String::from("GPS kernel benchmarks\n");
    for e in entries {
        out.push_str(&format!("  {:<40} {:>14.1} {}\n", e.name, e.value, e.unit));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_entries_for_every_concurrency_level() {
        // Smoke-check the shape only (timings are environment-dependent).
        let entries = run();
        assert_eq!(entries.len(), CHURN_TASKS.len() * 3 + 2);
        for e in &entries {
            assert!(e.value > 0.0, "{} must be positive", e.name);
        }
        crate::bench_schema::validate_entries("BENCH_gps.json", &entries).unwrap();
    }
}
