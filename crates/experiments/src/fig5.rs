//! Fig. 5 reproduction: Fair-Choice fairness under a skewed call mix.
//!
//! §VII-D: 10 CPU cores, intensity 90, exactly 10 dna-visualisation calls
//! (~1% of traffic), everything else uniform over the other ten functions.
//! The paper's claims:
//!
//! * the all-calls stretch distribution (Fig. 5a) looks like the standard
//!   intensity-90 panel (Fig. 4 at 10 CPUs would be its neighbour);
//! * FC rescues the rare long function: dna-visualisation's average stretch
//!   drops from 5.3 (SEPT) to 2.1, the median from 5.2 to 1.6 (Fig. 5b);
//! * the cost is mild for the short frequent graph-bfs: average stretch
//!   rises from 22.2 (SEPT) to 25.8 (Fig. 5c).

use crate::grid::{mode_for, STRATEGIES};
use crate::Effort;
use faas_cluster::{run_cluster_source, ClusterConfig, LoadBalancer};
use faas_invoker::{simulate_scenario, NodeConfig};
use faas_metrics::compare::Strategy;
use faas_metrics::summary::{stretches, MetricSummary};
use faas_metrics::table::{fmt_secs, TextTable};
use faas_workload::faults::FaultSpec;
use faas_workload::scenario::FairnessScenario;
use faas_workload::sebs::Catalogue;
use faas_workload::trace::CallOutcome;
use faas_workload::trace_source::WorkloadSource;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Stretch statistics for one strategy in the three panels of Fig. 5.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Row {
    /// Strategy.
    pub strategy: Strategy,
    /// Panel (a): all calls.
    pub all: MetricSummary,
    /// Panel (b): dna-visualisation calls only (1% of traffic).
    pub dna: MetricSummary,
    /// Panel (c): graph-bfs calls only (~9.9% of traffic).
    pub bfs: MetricSummary,
}

/// The Fig. 5 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Result {
    /// One row per strategy.
    pub rows: Vec<Fig5Row>,
}

/// Run the fairness experiment.
pub fn run(effort: Effort) -> Fig5Result {
    let catalogue = Catalogue::sebs();
    let scenario_cfg = FairnessScenario::paper();
    let seeds = effort.seed_set();
    let dna = catalogue.by_name("dna-visualisation").expect("dna exists");
    let bfs = catalogue.by_name("graph-bfs").expect("bfs exists");

    let rows: Vec<Fig5Row> = STRATEGIES
        .par_iter()
        .map(|&strategy| {
            let mut all = Vec::new();
            let mut dna_vals = Vec::new();
            let mut bfs_vals = Vec::new();
            for &seed in seeds {
                let scenario = scenario_cfg.generate(&catalogue, seed);
                let cfg = NodeConfig::paper(scenario_cfg.cores);
                let result =
                    simulate_scenario(&catalogue, &scenario, &mode_for(strategy), &cfg, seed);
                let outcomes: Vec<&CallOutcome> = result.measured().collect();
                all.extend(stretches(&outcomes, &catalogue));
                let dna_outs: Vec<&CallOutcome> =
                    outcomes.iter().copied().filter(|o| o.func == dna).collect();
                dna_vals.extend(stretches(&dna_outs, &catalogue));
                let bfs_outs: Vec<&CallOutcome> =
                    outcomes.iter().copied().filter(|o| o.func == bfs).collect();
                bfs_vals.extend(stretches(&bfs_outs, &catalogue));
            }
            Fig5Row {
                strategy,
                all: MetricSummary::from_values(&all),
                dna: MetricSummary::from_values(&dna_vals),
                bfs: MetricSummary::from_values(&bfs_vals),
            }
        })
        .collect();

    Fig5Result { rows }
}

/// Ingestion window of trace-backed runs (matches the sweep's chunk).
const SOURCE_CHUNK: usize = 512;

/// A summary that tolerates an absent panel: a trace need not call every
/// function the paper's fairness scenario names.
fn summary_or_empty(values: &[f64]) -> MetricSummary {
    if values.is_empty() {
        MetricSummary {
            count: 0,
            mean: 0.0,
            p50: 0.0,
            p75: 0.0,
            p95: 0.0,
            p99: 0.0,
            max: 0.0,
        }
    } else {
        MetricSummary::from_values(values)
    }
}

/// The fairness panels over an arbitrary [`WorkloadSource`] — the
/// trace-backed counterpart of [`run`]: the same three stretch panels on
/// the paper's 10-core node, but the calls come from any analytic spec or
/// trace instead of the materialized fairness scenario. Trace seeds are
/// the run seeds, so pooling over seeds pools over trace realizations.
/// Panels of functions the source never calls report a zero-count
/// summary. The only fallible path is opening a recorded trace file.
pub fn run_source(source: &WorkloadSource, effort: Effort) -> std::io::Result<Fig5Result> {
    let catalogue = Catalogue::sebs();
    let scenario_cfg = FairnessScenario::paper();
    let seeds = effort.seed_set();
    let dna = catalogue.by_name("dna-visualisation").expect("dna exists");
    let bfs = catalogue.by_name("graph-bfs").expect("bfs exists");

    let mut rows = Vec::new();
    for &strategy in STRATEGIES.iter() {
        let mut all = Vec::new();
        let mut dna_vals = Vec::new();
        let mut bfs_vals = Vec::new();
        for &seed in seeds {
            let cfg = ClusterConfig::independent(
                1,
                NodeConfig::paper(scenario_cfg.cores),
                LoadBalancer::RoundRobin,
            );
            let result = run_cluster_source(
                &catalogue,
                source,
                &mode_for(strategy),
                &cfg,
                &FaultSpec::none(),
                seed,
                seed ^ 0xC1u64,
                SOURCE_CHUNK,
            )?;
            let outcomes: Vec<&CallOutcome> = result.measured().collect();
            all.extend(stretches(&outcomes, &catalogue));
            let dna_outs: Vec<&CallOutcome> =
                outcomes.iter().copied().filter(|o| o.func == dna).collect();
            dna_vals.extend(stretches(&dna_outs, &catalogue));
            let bfs_outs: Vec<&CallOutcome> =
                outcomes.iter().copied().filter(|o| o.func == bfs).collect();
            bfs_vals.extend(stretches(&bfs_outs, &catalogue));
        }
        rows.push(Fig5Row {
            strategy,
            all: summary_or_empty(&all),
            dna: summary_or_empty(&dna_vals),
            bfs: summary_or_empty(&bfs_vals),
        });
    }
    Ok(Fig5Result { rows })
}

/// Render the three panels.
pub fn render(result: &Fig5Result) -> String {
    let mut out = String::from(
        "Fig. 5: stretch under the skewed mix (10 CPUs, intensity 90, 10 dna calls)\n",
    );
    type PanelPick = fn(&Fig5Row) -> MetricSummary;
    let panels: [(&str, PanelPick); 3] = [
        ("(a) all calls", |r| r.all),
        ("(b) dna-visualisation (1% of calls)", |r| r.dna),
        ("(c) graph-bfs (~9.9% of calls)", |r| r.bfs),
    ];
    for (title, pick) in panels {
        out.push_str(&format!("{title}\n"));
        let mut t = TextTable::new(["strategy", "avg", "p50", "p75", "p95"]);
        for row in &result.rows {
            let s = pick(row);
            t.row([
                row.strategy.name().to_string(),
                fmt_secs(s.mean),
                fmt_secs(s.p50),
                fmt_secs(s.p75),
                fmt_secs(s.p95),
            ]);
        }
        out.push_str(&t.render());
    }
    out.push_str(
        "paper: FC cuts dna stretch (avg 5.3 -> 2.1, median 5.2 -> 1.6 vs SEPT)\n       while graph-bfs pays mildly (avg 22.2 -> 25.8)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Fig5Result {
        run(Effort {
            seeds: 2,
            quick: true,
        })
    }

    fn row(r: &Fig5Result, s: Strategy) -> &Fig5Row {
        r.rows.iter().find(|x| x.strategy == s).unwrap()
    }

    #[test]
    fn fc_rescues_the_rare_long_function() {
        let r = quick();
        let fc = row(&r, Strategy::Fc);
        let sept = row(&r, Strategy::Sept);
        // The paper's core fairness claim (Fig. 5b): FC gives the rare
        // dna-visualisation far better stretch than SEPT.
        assert!(
            fc.dna.mean < sept.dna.mean,
            "FC dna stretch {:.2} must beat SEPT {:.2}",
            fc.dna.mean,
            sept.dna.mean
        );
        assert!(
            fc.dna.p50 < sept.dna.p50,
            "FC dna median {:.2} vs SEPT {:.2}",
            fc.dna.p50,
            sept.dna.p50
        );
    }

    #[test]
    fn fc_dna_improvement_ratio_matches_paper_shape() {
        // Paper: FC cuts the dna mean stretch from 5.3 (SEPT) to 2.1 —
        // a ~2.5x improvement. The simulator reproduces the direction with
        // a weaker factor (queue-depth composition differs); require at
        // least 1.2x on the mean (see EXPERIMENTS.md).
        let r = quick();
        let fc = row(&r, Strategy::Fc);
        let sept = row(&r, Strategy::Sept);
        assert!(
            fc.dna.mean * 1.2 < sept.dna.mean,
            "FC dna mean {:.2} vs SEPT {:.2}",
            fc.dna.mean,
            sept.dna.mean
        );
    }

    #[test]
    fn both_policies_keep_bfs_usable() {
        let r = quick();
        let fc = row(&r, Strategy::Fc);
        let sept = row(&r, Strategy::Sept);
        // graph-bfs remains in the same order of magnitude under FC; the
        // paper reports 22.2 -> 25.8.
        assert!(fc.bfs.mean < sept.bfs.mean * 10.0 + 50.0);
    }

    #[test]
    fn baseline_is_worst_overall() {
        let r = quick();
        let base = row(&r, Strategy::Baseline);
        let fc = row(&r, Strategy::Fc);
        assert!(base.all.mean > fc.all.mean);
    }

    #[test]
    fn spec_and_trace_sources_run_the_panels() {
        use faas_simcore::time::SimDuration;
        use faas_workload::arrival::ArrivalSpec;
        use faas_workload::generate::WorkloadSpec;
        use faas_workload::mix::MixSpec;
        use faas_workload::synth::SynthSpec;
        use faas_workload::trace_source::TraceSpec;
        use faas_workload::weight::WeightSpec;
        let effort = Effort {
            seeds: 1,
            quick: true,
        };
        // A spec source with the paper's rare-function mix populates every
        // panel, dna included.
        let spec = WorkloadSource::Spec(WorkloadSpec {
            arrival: ArrivalSpec::Uniform { count: 330 },
            mix: MixSpec::Fairness {
                rare_function: "dna-visualisation".into(),
                rare_calls: 10,
            },
            weights: WeightSpec::Uniform,
            window: SimDuration::from_secs(60),
        });
        let r = run_source(&spec, effort).unwrap();
        assert_eq!(r.rows.len(), STRATEGIES.len());
        for row in &r.rows {
            assert!(row.all.count > 0, "{:?}: all-calls panel", row.strategy);
            assert!(row.dna.count > 0, "{:?}: dna panel", row.strategy);
        }
        // A synthetic Azure-style trace drives the same panels; functions
        // the trace never draws degrade to zero-count summaries instead of
        // panicking.
        let trace = WorkloadSource::Trace(TraceSpec::Synthetic(SynthSpec::azure(
            6.0,
            SimDuration::from_secs(60),
        )));
        let r = run_source(&trace, effort).unwrap();
        for row in &r.rows {
            assert!(row.all.count > 0, "{:?}: trace-backed panel", row.strategy);
        }
    }

    #[test]
    fn render_has_three_panels() {
        let s = render(&quick());
        assert!(s.contains("(a) all calls"));
        assert!(s.contains("(b) dna-visualisation"));
        assert!(s.contains("(c) graph-bfs"));
    }
}
