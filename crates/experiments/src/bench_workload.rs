//! Workload-generation performance trajectory: `experiments bench`.
//!
//! Times the sharded counter-based generator ([`ShardedGenerator`]) against
//! serial generation on two workloads and writes `BENCH_workload.json` in
//! the same `{"name", "value", "unit"}` dashboard style as `BENCH_gps.json`
//! and `BENCH_events.json`:
//!
//! * **bulk generation** — materialize 10^6+ calls of an MMPP/Zipf
//!   workload. `serial` walks the index space on one thread; `sharded`
//!   fans the same chunks out under rayon and concatenates (bit-identical
//!   output). The speedup entry is the headline: generation is
//!   embarrassingly parallel because every call is a pure function of
//!   `(seed, index)`, so it should scale with cores (the `threads` entry
//!   records how many the runner had — on a single-core runner the
//!   speedup is ~1x by construction).
//! * **cluster assignment at 256 nodes** — produce every node's sorted
//!   call list. `filter` is the materialized path (each node scans the
//!   full shared burst, as `run_cluster` does); `stream` is the
//!   per-node stride of `run_cluster_streamed` (each node generates only
//!   its own calls). The stream path does O(n) total call-generations
//!   instead of O(n · nodes) scan steps, which is what keeps
//!   hundreds-of-nodes clusters from serializing on scenario assignment.

use crate::bench_gps::BenchEntry;
use faas_simcore::time::{SimDuration, SimTime};
use faas_workload::arrival::ArrivalSpec;
use faas_workload::generate::{ShardedGenerator, WorkloadSpec};
use faas_workload::mix::MixSpec;
use faas_workload::sebs::Catalogue;
use faas_workload::trace::Call;
use faas_workload::weight::WeightSpec;
use rayon::prelude::*;

/// Target call count for the bulk-generation benchmark.
const BULK_CALLS: usize = 1_000_000;
/// Nodes for the assignment benchmark.
const NODES: u64 = 256;
/// Calls for the assignment benchmark.
const ASSIGN_CALLS: usize = 1_000_000;
const SAMPLES: usize = 3;

fn bulk_generator(catalogue: &Catalogue, calls: usize) -> ShardedGenerator {
    let window = SimDuration::from_secs(60);
    let rate = calls as f64 / window.as_secs_f64();
    let spec = WorkloadSpec {
        arrival: ArrivalSpec::Mmpp {
            rate_on: 1.8 * rate,
            rate_off: 0.2 * rate,
            mean_on_secs: 8.0,
            mean_off_secs: 8.0,
        },
        mix: MixSpec::Zipf { s: 1.2 },
        weights: WeightSpec::Uniform,
        window,
    };
    ShardedGenerator::new(&spec, catalogue, SimTime::ZERO, 0xBE7C)
}

/// Checksum so the optimizer cannot discard the generated calls.
fn checksum(calls: &[Call]) -> u64 {
    calls
        .iter()
        .fold(0u64, |acc, c| acc.wrapping_add(c.release.as_nanos()))
}

/// The streamed path of `run_cluster_streamed`: every node generates and
/// sorts only its own stride, in parallel.
fn assign_stream(generator: &ShardedGenerator, nodes: u64) -> u64 {
    let node_ids: Vec<u64> = (0..nodes).collect();
    let sums: Vec<u64> = node_ids
        .par_iter()
        .map(|&node| {
            let mut calls: Vec<Call> = generator.iter_stride(node, nodes).collect();
            calls.sort_by_key(|c| (c.release, c.id));
            checksum(&calls)
        })
        .collect();
    sums.into_iter().fold(0u64, u64::wrapping_add)
}

/// The materialized path of `run_cluster`: one shared burst; every node
/// scans it for its own calls (round-robin by position).
fn assign_filter(burst: &[Call], nodes: u64) -> u64 {
    let node_ids: Vec<u64> = (0..nodes).collect();
    let sums: Vec<u64> = node_ids
        .par_iter()
        .map(|&node| {
            let calls: Vec<Call> = burst
                .iter()
                .enumerate()
                .filter(|(i, _)| *i as u64 % nodes == node)
                .map(|(_, c)| *c)
                .collect();
            checksum(&calls)
        })
        .collect();
    sums.into_iter().fold(0u64, u64::wrapping_add)
}

/// Run the workload-generation benchmarks.
pub fn run() -> Vec<BenchEntry> {
    let catalogue = Catalogue::sebs();
    let mut entries = Vec::new();

    let generator = bulk_generator(&catalogue, BULK_CALLS);
    let n = generator.len();
    entries.push(BenchEntry {
        name: "workload_gen_bulk_calls".into(),
        value: n as f64,
        unit: "calls".into(),
    });
    entries.push(BenchEntry {
        name: "workload_gen_threads".into(),
        value: rayon::current_num_threads() as f64,
        unit: "threads".into(),
    });

    let serial = crate::median_ns(SAMPLES, || checksum(&generator.generate_serial()));
    let sharded = crate::median_ns(SAMPLES, || checksum(&generator.generate_parallel()));
    entries.push(BenchEntry {
        name: "workload_gen_bulk_serial_wall".into(),
        value: serial / 1e6,
        unit: "ms".into(),
    });
    entries.push(BenchEntry {
        name: "workload_gen_bulk_sharded_wall".into(),
        value: sharded / 1e6,
        unit: "ms".into(),
    });
    entries.push(BenchEntry {
        name: "workload_gen_bulk_sharded_speedup".into(),
        value: serial / sharded,
        unit: "x".into(),
    });

    let assign_gen = bulk_generator(&catalogue, ASSIGN_CALLS);
    let mut burst = assign_gen.generate_parallel();
    burst.sort_by_key(|c| (c.release, c.id));
    let filter = crate::median_ns(SAMPLES, || assign_filter(&burst, NODES));
    let stream = crate::median_ns(SAMPLES, || assign_stream(&assign_gen, NODES));
    entries.push(BenchEntry {
        name: format!("cluster_assign_n{NODES}_filter_wall"),
        value: filter / 1e6,
        unit: "ms".into(),
    });
    entries.push(BenchEntry {
        name: format!("cluster_assign_n{NODES}_stream_wall"),
        value: stream / 1e6,
        unit: "ms".into(),
    });
    entries.push(BenchEntry {
        name: format!("cluster_assign_n{NODES}_stream_speedup"),
        value: filter / stream,
        unit: "x".into(),
    });
    entries
}

/// Human-readable rendering of the entries.
pub fn render(entries: &[BenchEntry]) -> String {
    let mut out = String::from("Workload-generation benchmarks\n");
    for e in entries {
        out.push_str(&format!("  {:<44} {:>12.1} {}\n", e.name, e.value, e.unit));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_paths_agree() {
        // Both assignment schemes must hand every node the same calls.
        let catalogue = Catalogue::sebs();
        let generator = bulk_generator(&catalogue, 10_000);
        let burst = generator.generate_serial();
        assert_eq!(assign_stream(&generator, 7), assign_filter(&burst, 7));
    }

    #[test]
    fn bulk_count_is_near_target() {
        // The MMPP count varies with the realized on/off path (only ~7
        // sojourns fit the window), so the tolerance is a coarse band, not
        // a Poisson sqrt(n) bound.
        let catalogue = Catalogue::sebs();
        let generator = bulk_generator(&catalogue, BULK_CALLS);
        let n = generator.len() as f64;
        let target = BULK_CALLS as f64;
        assert!(
            (0.3 * target..2.0 * target).contains(&n),
            "realized count {n} vs target {target}"
        );
    }
}
