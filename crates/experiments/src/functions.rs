//! Per-function response-time breakdown (§II of the paper).
//!
//! "As the processing time p(i) depends on (although it is not fully
//! determined by) the function f(i) being called, we will show aggregations
//! of response time across all calls of the function f(i). We do so to make
//! sure that our methods do not discriminate against a certain class of
//! function — short, long, often- or rarely-called."
//!
//! This experiment renders that view for one grid configuration: median and
//! 95th-percentile response time per function per strategy.

use crate::grid::{mode_for, STRATEGIES};
use crate::Effort;
use faas_invoker::{simulate_scenario, NodeConfig};
use faas_metrics::compare::Strategy;
use faas_metrics::summary::MetricSummary;
use faas_metrics::table::{fmt_secs, TextTable};
use faas_workload::scenario::BurstScenario;
use faas_workload::sebs::Catalogue;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Breakdown of one strategy over the functions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FunctionRow {
    /// Strategy.
    pub strategy: Strategy,
    /// Per-function response summaries, in catalogue order.
    pub per_function: Vec<(String, MetricSummary)>,
}

/// The per-function breakdown result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FunctionsResult {
    /// CPU cores of the configuration.
    pub cores: u32,
    /// Intensity of the configuration.
    pub intensity: u32,
    /// One row per strategy.
    pub rows: Vec<FunctionRow>,
}

/// Run the breakdown at the paper's mid configuration (10 cores,
/// intensity 60).
pub fn run(effort: Effort) -> FunctionsResult {
    let catalogue = Catalogue::sebs();
    let (cores, intensity) = (10u32, 60u32);
    let seeds = effort.seed_set();

    let rows: Vec<FunctionRow> = STRATEGIES
        .par_iter()
        .map(|&strategy| {
            // Pool responses per function over the seeds.
            let mut per_func: Vec<Vec<f64>> = vec![Vec::new(); catalogue.len()];
            for &seed in seeds {
                let scenario = BurstScenario::standard(cores, intensity).generate(&catalogue, seed);
                let result = simulate_scenario(
                    &catalogue,
                    &scenario,
                    &mode_for(strategy),
                    &NodeConfig::paper(cores),
                    seed,
                );
                for o in result.measured() {
                    per_func[o.func.index()].push(o.response_time().as_secs_f64());
                }
            }
            FunctionRow {
                strategy,
                per_function: catalogue
                    .iter()
                    .map(|(id, spec)| {
                        (
                            spec.name.to_string(),
                            MetricSummary::from_values(&per_func[id.index()]),
                        )
                    })
                    .collect(),
            }
        })
        .collect();

    FunctionsResult {
        cores,
        intensity,
        rows,
    }
}

/// Render the breakdown: one table per metric, functions as rows,
/// strategies as columns.
pub fn render(result: &FunctionsResult) -> String {
    let mut out = format!(
        "Per-function response times ({} cores, intensity {}; SSII's fairness view)\n",
        result.cores, result.intensity
    );
    for (title, pick) in [
        (
            "median response (s)",
            (|s: &MetricSummary| s.p50) as fn(&MetricSummary) -> f64,
        ),
        ("p95 response (s)", |s: &MetricSummary| s.p95),
    ] {
        out.push_str(&format!("-- {title}\n"));
        let mut header = vec!["function".to_string()];
        header.extend(result.rows.iter().map(|r| r.strategy.name().to_string()));
        let mut t = TextTable::new(header);
        let n_funcs = result.rows[0].per_function.len();
        for f in 0..n_funcs {
            let mut row = vec![result.rows[0].per_function[f].0.clone()];
            for r in &result.rows {
                row.push(fmt_secs(pick(&r.per_function[f].1)));
            }
            t.row(row);
        }
        out.push_str(&t.render());
    }
    out.push_str(
        "reading: under SEPT/FC every class of function improves on the baseline;\n\
         the long tail (dna-visualisation, sleep) pays the queueing price under\n\
         SEPT, which is the opening Fair-Choice addresses in Fig. 5.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> FunctionsResult {
        run(Effort {
            seeds: 1,
            quick: true,
        })
    }

    #[test]
    fn breakdown_covers_all_functions_and_strategies() {
        let r = quick();
        assert_eq!(r.rows.len(), 6);
        for row in &r.rows {
            assert_eq!(row.per_function.len(), 11);
            for (_, s) in &row.per_function {
                assert_eq!(s.count, 60); // 60 calls per function, one seed
            }
        }
    }

    #[test]
    fn no_function_class_is_discriminated_by_fc_vs_baseline() {
        // SSII's fairness criterion: FC must not make any function's median
        // worse than the baseline's at this load.
        let r = quick();
        let get = |s: Strategy| {
            r.rows
                .iter()
                .find(|row| row.strategy == s)
                .unwrap()
                .per_function
                .clone()
        };
        let base = get(Strategy::Baseline);
        let fc = get(Strategy::Fc);
        let mut fc_wins = 0;
        for (b, f) in base.iter().zip(&fc) {
            if f.1.p50 <= b.1.p50 * 1.5 {
                fc_wins += 1;
            }
        }
        assert!(
            fc_wins >= 9,
            "FC must be competitive on nearly every function, won {fc_wins}/11"
        );
    }

    #[test]
    fn short_functions_gain_most_under_sept() {
        let r = quick();
        let get = |s: Strategy, name: &str| {
            r.rows
                .iter()
                .find(|row| row.strategy == s)
                .unwrap()
                .per_function
                .iter()
                .find(|(n, _)| n == name)
                .unwrap()
                .1
                .p50
        };
        // graph-bfs improves far more than dna-visualisation when moving
        // FIFO -> SEPT.
        let bfs_gain = get(Strategy::Fifo, "graph-bfs") / get(Strategy::Sept, "graph-bfs");
        let dna_gain =
            get(Strategy::Fifo, "dna-visualisation") / get(Strategy::Sept, "dna-visualisation");
        assert!(
            bfs_gain > dna_gain,
            "bfs gain {bfs_gain:.1}x vs dna gain {dna_gain:.1}x"
        );
    }

    #[test]
    fn render_contains_metric_sections() {
        let s = render(&quick());
        assert!(s.contains("median response"));
        assert!(s.contains("p95 response"));
        assert!(s.contains("graph-bfs"));
    }
}
