//! End-to-end coverage of the perf-trajectory toolchain through the real
//! `experiments` binary: `history-append` builds the durable
//! `BENCH_HISTORY.json`, `check-bench --baseline` exits non-zero on a
//! synthetically injected 2x timing regression and zero on an unchanged
//! rerun, and `dashboard` renders every speedup and `calls/s` series from
//! a ≥2-point history into a self-contained HTML page — the exact flow CI
//! runs (restore → bench → gate → append → dashboard → upload).

use faas_experiments::bench_gps::BenchEntry;
use faas_experiments::bench_history::HISTORY_FILE;
use faas_experiments::bench_schema::EXPECTED_ARTIFACTS;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn entry(name: &str, value: f64, unit: &str) -> BenchEntry {
    BenchEntry {
        name: name.into(),
        value,
        unit: unit.into(),
    }
}

/// Write the canonical seven artifacts; timings scale with `scale` (and
/// throughput inversely), so `scale = 2.0` is a uniform 2x regression.
fn write_artifacts(dir: &Path, scale: f64) {
    for name in EXPECTED_ARTIFACTS {
        let mut entries = vec![
            entry("k_n10_candidate", 120.0 * scale, "ns/iter"),
            entry("k_n10_reference", 360.0 * scale, "ns/iter"),
            entry("k_n10_speedup", 3.0, "x"),
            entry("k_peak_resident", 0.0, "calls"),
            entry("k_threads", 1.0, "count"),
        ];
        if name.contains("replay") {
            entries.push(entry("k_c1000_calls_per_sec", 2.5e6 / scale, "calls/s"));
        }
        faas_metrics::export::write_json(&dir.join(name), &entries).unwrap();
    }
}

fn experiments(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(args)
        .output()
        .expect("spawn experiments binary")
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("experiments_cli_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn gate_append_and_dashboard_flow_through_the_cli() {
    let dir = fresh_dir("flow");
    let out = dir.to_str().unwrap();
    let history = dir.join(HISTORY_FILE);
    write_artifacts(&dir, 1.0);

    // First run: no baseline yet — the gate is skipped, not failed.
    let first = experiments(&["check-bench", "--out", out, "--baseline"]);
    assert!(!first.status.success(), "--baseline without a value usages");
    let first = experiments(&[
        "check-bench",
        "--out",
        out,
        "--baseline",
        history.to_str().unwrap(),
    ]);
    assert!(first.status.success(), "{first:?}");
    assert!(String::from_utf8_lossy(&first.stdout).contains("first run"));

    // Append two commits' worth of history (identical artifacts — the
    // trajectory of an unchanged tree).
    for (id, ts) in [
        ("c1", "2026-08-07T00:00:00Z"),
        ("c2", "2026-08-08T00:00:00Z"),
    ] {
        let append = experiments(&[
            "history-append",
            "--out",
            out,
            "--commit",
            id,
            "--message",
            &format!("commit {id}"),
            "--timestamp",
            ts,
        ]);
        assert!(append.status.success(), "{append:?}");
    }
    assert!(history.exists());

    // Unchanged rerun: exits zero.
    let pass = experiments(&[
        "check-bench",
        "--out",
        out,
        "--baseline",
        history.to_str().unwrap(),
    ]);
    assert!(pass.status.success(), "{pass:?}");
    assert!(String::from_utf8_lossy(&pass.stdout).contains("regression gate ok"));

    // Inject a 2x timing regression: exits non-zero with a named report.
    write_artifacts(&dir, 2.0);
    let fail = experiments(&[
        "check-bench",
        "--out",
        out,
        "--baseline",
        history.to_str().unwrap(),
    ]);
    assert!(!fail.status.success(), "{fail:?}");
    let report = String::from_utf8_lossy(&fail.stderr);
    assert!(report.contains("k_n10_candidate"), "{report}");
    assert!(report.contains("timing regression"), "{report}");
    assert!(report.contains("throughput drop"), "{report}");

    // A loosened per-run threshold lets an intentional change through.
    let waived = experiments(&[
        "check-bench",
        "--out",
        out,
        "--baseline",
        history.to_str().unwrap(),
        "--gate-timing-pct",
        "150",
        "--gate-throughput-pct",
        "60",
    ]);
    assert!(waived.status.success(), "{waived:?}");

    // Dashboard from the ≥2-point history: one series per `*_speedup`
    // and `*_calls_per_sec` entry, self-contained.
    let html_path = dir.join("dashboard.html");
    let dash = experiments(&[
        "dashboard",
        "--history",
        history.to_str().unwrap(),
        "--out",
        html_path.to_str().unwrap(),
    ]);
    assert!(dash.status.success(), "{dash:?}");
    let html = std::fs::read_to_string(&html_path).unwrap();
    assert!(html.contains("data-series=\"k_n10_speedup\""));
    assert!(html.contains("data-series=\"k_c1000_calls_per_sec\""));
    assert!(html.contains("<polyline"), "two points draw a line");
    assert!(!html.contains("<link"), "no external assets");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn history_append_refuses_an_incomplete_artifact_set() {
    let dir = fresh_dir("partial");
    faas_metrics::export::write_json(
        &dir.join("BENCH_gps.json"),
        &vec![
            entry("k_n10_candidate", 120.0, "ns/iter"),
            entry("k_n10_reference", 360.0, "ns/iter"),
            entry("k_n10_speedup", 3.0, "x"),
            entry("k_threads", 1.0, "count"),
        ],
    )
    .unwrap();
    let append = experiments(&[
        "history-append",
        "--out",
        dir.to_str().unwrap(),
        "--commit",
        "c1",
        "--timestamp",
        "t",
    ]);
    assert!(!append.status.success());
    assert!(String::from_utf8_lossy(&append.stderr).contains("missing canonical artifact"));
    assert!(!dir.join(HISTORY_FILE).exists(), "no partial history saved");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn check_bench_still_catches_schema_drift_before_gating() {
    let dir = fresh_dir("drift");
    write_artifacts(&dir, 1.0);
    // A stale speedup (pair says 3.0) is caught by plain check-bench even
    // without any baseline.
    let mut entries = vec![
        entry("k_n10_candidate", 120.0, "ns/iter"),
        entry("k_n10_reference", 360.0, "ns/iter"),
        entry("k_n10_speedup", 2.2, "x"),
        entry("k_threads", 1.0, "count"),
    ];
    entries.push(entry("k_c1000_calls_per_sec", 2.5e6, "calls/s"));
    faas_metrics::export::write_json(&dir.join("BENCH_replay.json"), &entries).unwrap();
    let check = experiments(&["check-bench", "--out", dir.to_str().unwrap()]);
    assert!(!check.status.success());
    assert!(String::from_utf8_lossy(&check.stderr).contains("stale or miscomputed"));
    let _ = std::fs::remove_dir_all(&dir);
}
