//! Quickstart: compare all six scheduling strategies on one overloaded node.
//!
//! Reproduces one panel of the paper's Fig. 3/4 (10 CPU cores, intensity 60)
//! and prints the average/median response time and stretch per strategy.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use faas_scheduling::metrics::summary::RunSummary;
use faas_scheduling::metrics::table::{fmt_secs, TextTable};
use faas_scheduling::prelude::*;

fn main() {
    let catalogue = Catalogue::sebs();
    let cores = 10;
    let intensity = 60;
    let seed = 42;

    // One 60-second burst (SSV-B of the paper): 1.1 * cores * intensity
    // requests, equal per-function counts, preceded by a warm-up phase.
    let scenario = BurstScenario::standard(cores, intensity).generate(&catalogue, seed);
    println!(
        "node: {cores} cores, 32 GiB | burst: {} calls over 60 s (intensity {intensity})\n",
        scenario.measured_len()
    );

    let node = NodeConfig::paper(cores);
    let modes: Vec<(&str, NodeMode)> = vec![
        ("baseline", NodeMode::Baseline),
        (
            "FIFO",
            NodeMode::Scheduled(SchedulerConfig::paper(Policy::Fifo)),
        ),
        (
            "SEPT",
            NodeMode::Scheduled(SchedulerConfig::paper(Policy::Sept)),
        ),
        (
            "EECT",
            NodeMode::Scheduled(SchedulerConfig::paper(Policy::Eect)),
        ),
        (
            "RECT",
            NodeMode::Scheduled(SchedulerConfig::paper(Policy::Rect)),
        ),
        (
            "FC",
            NodeMode::Scheduled(SchedulerConfig::paper(Policy::FairChoice)),
        ),
    ];

    let mut table = TextTable::new([
        "strategy",
        "R avg",
        "R p50",
        "R p95",
        "S avg",
        "S p50",
        "cold starts",
    ]);
    for (name, mode) in &modes {
        let result = simulate_scenario(&catalogue, &scenario, mode, &node, seed);
        let outcomes: Vec<&CallOutcome> = result.measured().collect();
        let summary = RunSummary::from_outcomes(&outcomes, &catalogue, scenario.burst_start);
        table.row([
            name.to_string(),
            fmt_secs(summary.response.mean),
            fmt_secs(summary.response.p50),
            fmt_secs(summary.response.p95),
            fmt_secs(summary.stretch.mean),
            fmt_secs(summary.stretch.p50),
            result.measured_cold_starts().to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("paper (Table III, 10 CPUs / intensity 60):");
    println!("  baseline R avg 123.4, FIFO 101.8, SEPT 25.1, EECT 40.9, RECT 40.4, FC 22.7");
}
