//! Cold-start budgeting: how much memory does a worker actually need?
//!
//! Reproduces the paper's Fig. 2 methodology as a capacity-planning tool:
//! sweep the memory pool of a 10-core worker and watch the measured-phase
//! cold starts under the paper's container management (FIFO variant) and
//! under stock OpenWhisk. The paper uses exactly this sweep to pick the
//! 32 GiB pool used everywhere else (§VI).
//!
//! ```text
//! cargo run --release --example coldstart_budget
//! ```

use faas_scheduling::metrics::table::TextTable;
use faas_scheduling::prelude::*;

fn main() {
    let catalogue = Catalogue::sebs();
    let cores = 10;
    let intensity = 60;
    let seed = 5;
    let scenario = BurstScenario::standard(cores, intensity).generate(&catalogue, seed);

    println!(
        "memory sweep on a {cores}-core node, intensity {intensity} ({} calls)\n",
        scenario.measured_len()
    );

    let mut table = TextTable::new([
        "memory",
        "ours: cold starts",
        "ours: evictions",
        "baseline: cold starts",
        "baseline: evictions",
    ]);
    for memory_gb in [2u64, 4, 8, 16, 32, 64, 128] {
        let cfg = NodeConfig::paper(cores).with_memory_mb(memory_gb * 1024);
        let ours = simulate_scenario(
            &catalogue,
            &scenario,
            &NodeMode::Scheduled(SchedulerConfig::paper(Policy::Fifo)),
            &cfg,
            seed,
        );
        let base = simulate_scenario(&catalogue, &scenario, &NodeMode::Baseline, &cfg, seed);
        table.row([
            format!("{memory_gb} GiB"),
            ours.measured_cold_starts().to_string(),
            ours.measured_pool_stats.evictions.to_string(),
            base.measured_cold_starts().to_string(),
            base.measured_pool_stats.evictions.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "reading: under the paper's container management the pool stabilises once\n\
         every (function x core) container fits — 11 x 10 x 256 MiB = 27.5 GiB, hence\n\
         the paper's 32 GiB choice. Stock OpenWhisk keeps cold-starting at any size\n\
         because greedy creation churns the pool (Fig. 2a vs 2b)."
    );
}
