//! Cluster right-sizing: serve the same load with fewer machines.
//!
//! Reproduces the paper's §VIII headline experiment: a fixed total load
//! (2376 requests over 60 s) on 1–4 workers of 18 action cores each,
//! baseline vs Fair-Choice. The claim: **FC on 3 VMs provides better
//! response-time statistics than the baseline on 4 VMs**, i.e. the
//! scheduler is worth at least 25% of the fleet.
//!
//! ```text
//! cargo run --release --example rightsizing
//! ```

use faas_scheduling::metrics::summary::MetricSummary;
use faas_scheduling::metrics::table::{fmt_secs, TextTable};
use faas_scheduling::prelude::*;
use faas_scheduling::simcore::time::SimDuration;

fn main() {
    let catalogue = Catalogue::sebs();
    let cores_per_node = 18;
    let per_function = 216; // 11 functions x 216 = 2376 requests.
    let seed = 11;

    let scenario = ClusterScenario::generate(
        &catalogue,
        per_function,
        cores_per_node,
        SimDuration::from_secs(60),
        seed,
    );
    println!(
        "fixed load: {} requests over 60 s; workers of {cores_per_node} action cores\n",
        scenario.burst.len()
    );

    let mut table = TextTable::new(["nodes", "strategy", "R avg", "R p75", "R p95", "R p99"]);
    let mut fc3: Option<MetricSummary> = None;
    let mut base4: Option<MetricSummary> = None;

    for nodes in [4u16, 3, 2, 1] {
        for (name, mode) in [
            ("baseline", NodeMode::Baseline),
            (
                "FC",
                NodeMode::Scheduled(SchedulerConfig::paper(Policy::FairChoice)),
            ),
        ] {
            let cfg = ClusterConfig::independent(
                nodes,
                NodeConfig::paper(cores_per_node),
                LoadBalancer::RoundRobin,
            );
            let result = run_cluster(&catalogue, &scenario, &mode, &cfg, seed);
            let resp: Vec<f64> = result
                .outcomes
                .iter()
                .filter(|o| o.is_measured())
                .map(|o| o.response_time().as_secs_f64())
                .collect();
            let summary = MetricSummary::from_values(&resp);
            if nodes == 3 && name == "FC" {
                fc3 = Some(summary);
            }
            if nodes == 4 && name == "baseline" {
                base4 = Some(summary);
            }
            table.row([
                nodes.to_string(),
                name.to_string(),
                fmt_secs(summary.mean),
                fmt_secs(summary.p75),
                fmt_secs(summary.p95),
                fmt_secs(summary.p99),
            ]);
        }
    }
    println!("{}", table.render());

    let (fc3, base4) = (
        fc3.expect("3-node FC ran"),
        base4.expect("4-node baseline ran"),
    );
    println!(
        "headline: FC on 3 VMs -> avg {} | baseline on 4 VMs -> avg {}  ({})",
        fmt_secs(fc3.mean),
        fmt_secs(base4.mean),
        if fc3.mean < base4.mean {
            "FC wins with 25% fewer machines, as in the paper"
        } else {
            "unexpected: check calibration"
        }
    );
    println!("paper: FC/3VM avg 68 s vs baseline/4VM avg 240 s (Table V)");
}
