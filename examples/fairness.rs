//! Fairness under a skewed mix: why Fair-Choice exists.
//!
//! Reproduces the paper's Fig. 5 experiment: 10 CPU cores, intensity 90,
//! exactly ten calls of the long dna-visualisation function (~1% of
//! traffic) against a flood of short calls. SEPT always prioritises short
//! expected processing times, so the rare long function starves; FC
//! prioritises by *recent concluded work*, so a function that has consumed
//! nothing recently runs almost immediately.
//!
//! ```text
//! cargo run --release --example fairness
//! ```

use faas_scheduling::metrics::summary::stretches;
use faas_scheduling::metrics::table::{fmt_secs, TextTable};
use faas_scheduling::prelude::*;
use faas_scheduling::simcore::stats::Summary;

fn main() {
    let catalogue = Catalogue::sebs();
    let scenario_cfg = FairnessScenario::paper();
    let seed = 3;
    let scenario = scenario_cfg.generate(&catalogue, seed);
    let dna = catalogue.by_name("dna-visualisation").unwrap();
    let bfs = catalogue.by_name("graph-bfs").unwrap();
    let node = NodeConfig::paper(scenario_cfg.cores);

    println!(
        "skewed mix: {} calls in 60 s, only {} of them dna-visualisation (8.5 s)\n",
        scenario.measured_len(),
        scenario.burst.iter().filter(|c| c.func == dna).count()
    );

    let mut table = TextTable::new([
        "strategy",
        "dna stretch avg",
        "dna stretch p50",
        "bfs stretch avg",
        "all stretch avg",
    ]);
    for policy in [Policy::Sept, Policy::FairChoice, Policy::Fifo] {
        let mode = NodeMode::Scheduled(SchedulerConfig::paper(policy));
        let result = simulate_scenario(&catalogue, &scenario, &mode, &node, seed);
        let outcomes: Vec<&CallOutcome> = result.measured().collect();
        let per_func = |f: FuncId| -> Summary {
            let filtered: Vec<&CallOutcome> =
                outcomes.iter().copied().filter(|o| o.func == f).collect();
            Summary::from_data(&stretches(&filtered, &catalogue))
        };
        let dna_s = per_func(dna);
        let bfs_s = per_func(bfs);
        let all_s = Summary::from_data(&stretches(&outcomes, &catalogue));
        table.row([
            policy.name().to_string(),
            fmt_secs(dna_s.mean),
            fmt_secs(dna_s.median()),
            fmt_secs(bfs_s.mean),
            fmt_secs(all_s.mean),
        ]);
    }
    println!("{}", table.render());
    println!(
        "paper (Fig. 5): SEPT dna stretch avg 5.3 / median 5.2; FC cuts it to 2.1 / 1.6\n\
         while graph-bfs only degrades from 22.2 to 25.8. The long rare function is\n\
         rescued at a mild cost to the short frequent one."
    );
}
