//! Peak-load survival: how each strategy rides out a traffic spike.
//!
//! The paper's motivation (§I) is the short traffic peak: a service
//! provisioned for steady load suddenly receives a 60-second burst several
//! times its capacity, and horizontal autoscaling is too slow to help. This
//! example sweeps the burst intensity on a fixed 10-core node and reports
//! how the 95th-percentile response time degrades for the baseline, FIFO
//! and Fair-Choice — the reproduction of the paper's "handle the peak
//! without adding nodes" argument.
//!
//! ```text
//! cargo run --release --example peak_load
//! ```

use faas_scheduling::metrics::summary::RunSummary;
use faas_scheduling::metrics::table::{fmt_secs, TextTable};
use faas_scheduling::prelude::*;

fn main() {
    let catalogue = Catalogue::sebs();
    let cores = 10;
    let node = NodeConfig::paper(cores);
    let seed = 7;

    let mut table = TextTable::new([
        "intensity",
        "baseline p95",
        "FIFO p95",
        "FC p95",
        "baseline avg",
        "FIFO avg",
        "FC avg",
    ]);

    for intensity in [30u32, 40, 60, 90, 120] {
        let scenario = BurstScenario::standard(cores, intensity).generate(&catalogue, seed);
        let run = |mode: &NodeMode| -> RunSummary {
            let result = simulate_scenario(&catalogue, &scenario, mode, &node, seed);
            let outcomes: Vec<&CallOutcome> = result.measured().collect();
            RunSummary::from_outcomes(&outcomes, &catalogue, scenario.burst_start)
        };
        let base = run(&NodeMode::Baseline);
        let fifo = run(&NodeMode::Scheduled(SchedulerConfig::paper(Policy::Fifo)));
        let fc = run(&NodeMode::Scheduled(SchedulerConfig::paper(
            Policy::FairChoice,
        )));
        table.row([
            intensity.to_string(),
            fmt_secs(base.response.p95),
            fmt_secs(fifo.response.p95),
            fmt_secs(fc.response.p95),
            fmt_secs(base.response.mean),
            fmt_secs(fifo.response.mean),
            fmt_secs(fc.response.mean),
        ]);
    }

    println!("peak-load sweep on a single {cores}-core node (60 s burst)\n");
    println!("{}", table.render());
    println!(
        "reading: intensity 30 is ~50% nominal CPU utilization (SSV-B); at 120 the node\n\
         receives four times that. Fair-Choice keeps the average response roughly an\n\
         order of magnitude below the baseline at every overload level, which is why\n\
         the paper argues the CPU buffer for peaks can shrink."
    );
}
