//! # faas-scheduling
//!
//! A full reproduction of **"Call Scheduling to Reduce Response Time of a
//! FaaS System"** (Żuk, Przybylski, Rzadca — IEEE CLUSTER 2022,
//! arXiv:2207.13168) as a Rust workspace: the paper's node-level scheduling
//! policies, an OpenWhisk-like simulation substrate calibrated to the
//! paper's testbed, and a harness regenerating every table and figure of
//! the evaluation.
//!
//! This crate is the umbrella: it re-exports the public API of every
//! workspace member under stable module names.
//!
//! ## Quick start
//!
//! ```
//! use faas_scheduling::prelude::*;
//!
//! // The SeBS workload of the paper (Table I).
//! let catalogue = Catalogue::sebs();
//!
//! // A 60-second burst at intensity 30 on a 10-core node (SSV-B).
//! let scenario = BurstScenario::standard(10, 30).generate(&catalogue, 42);
//!
//! // Run the paper's node with the SEPT policy...
//! let node = NodeConfig::paper(10);
//! let sept = simulate_scenario(
//!     &catalogue,
//!     &scenario,
//!     &NodeMode::Scheduled(SchedulerConfig::paper(Policy::Sept)),
//!     &node,
//!     42,
//! );
//! // ...and compare with unmodified OpenWhisk.
//! let baseline = simulate_scenario(&catalogue, &scenario, &NodeMode::Baseline, &node, 42);
//!
//! let avg = |r: &NodeResult| {
//!     let v: Vec<f64> = r.measured().map(|o| o.response_time().as_secs_f64()).collect();
//!     v.iter().sum::<f64>() / v.len() as f64
//! };
//! assert!(avg(&sept) > 0.0 && avg(&baseline) > 0.0);
//! ```
//!
//! ## Layout
//!
//! | Module | Workspace crate | Contents |
//! |--------|-----------------|----------|
//! | [`simcore`] | `faas-simcore` | Discrete-event kernel: time, RNG, distributions, statistics |
//! | [`cpu`] | `faas-cpu` | Dedicated-core and GPS processor models |
//! | [`workload`] | `faas-workload` | SeBS catalogue (Table I), burst/fairness scenarios |
//! | [`core`] | `faas-core` | The paper's contribution: policies, estimator, priority queue |
//! | [`invoker`] | `faas-invoker` | OpenWhisk invoker substrate: container pool, node simulations |
//! | [`cluster`] | `faas-cluster` | Controller, load balancers, multi-node engine |
//! | [`metrics`] | `faas-metrics` | Response/stretch aggregation, paper reference tables |

pub use faas_cluster as cluster;
pub use faas_core as core;
pub use faas_cpu as cpu;
pub use faas_invoker as invoker;
pub use faas_metrics as metrics;
pub use faas_simcore as simcore;
pub use faas_workload as workload;

/// The most commonly used items, for `use faas_scheduling::prelude::*`.
pub mod prelude {
    pub use faas_cluster::{run_cluster, ClusterConfig, ClusterScenario, LoadBalancer};
    pub use faas_core::{Policy, SchedulerConfig, SchedulerState};
    pub use faas_invoker::{
        simulate_calls, simulate_scenario, Calibration, NodeConfig, NodeMode, NodeResult,
    };
    pub use faas_metrics::summary::RunSummary;
    pub use faas_simcore::time::{SimDuration, SimTime};
    pub use faas_workload::scenario::{BurstScenario, FairnessScenario, Scenario};
    pub use faas_workload::sebs::{Catalogue, FuncId};
    pub use faas_workload::trace::{Call, CallKind, CallOutcome};
}
