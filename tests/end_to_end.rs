//! End-to-end integration tests: scenario generation → node simulation →
//! metric aggregation, across crate boundaries.

use faas_scheduling::metrics::summary::RunSummary;
use faas_scheduling::prelude::*;

fn avg_response(result: &NodeResult) -> f64 {
    let v: Vec<f64> = result
        .measured()
        .map(|o| o.response_time().as_secs_f64())
        .collect();
    v.iter().sum::<f64>() / v.len() as f64
}

#[test]
fn full_pipeline_produces_consistent_summaries() {
    let catalogue = Catalogue::sebs();
    let scenario = BurstScenario::standard(10, 30).generate(&catalogue, 1);
    let node = NodeConfig::paper(10);
    let result = simulate_scenario(
        &catalogue,
        &scenario,
        &NodeMode::Scheduled(SchedulerConfig::paper(Policy::Sept)),
        &node,
        1,
    );
    assert_eq!(result.measured_len(), scenario.measured_len());

    let outcomes: Vec<&CallOutcome> = result.measured().collect();
    let summary = RunSummary::from_outcomes(&outcomes, &catalogue, scenario.burst_start);
    // Percentiles are internally consistent.
    let r = summary.response;
    assert!(r.p50 <= r.p75 && r.p75 <= r.p95 && r.p95 <= r.p99 && r.p99 <= r.max);
    // The mean response matches a direct computation.
    assert!((r.mean - avg_response(&result)).abs() < 1e-9);
    // Every completion fits below the recorded last completion.
    for o in &outcomes {
        assert!(o.completion <= result.last_completion);
    }
}

#[test]
fn causality_holds_for_every_call_and_strategy() {
    let catalogue = Catalogue::sebs();
    let scenario = BurstScenario::standard(5, 40).generate(&catalogue, 2);
    let node = NodeConfig::paper(5);
    let modes = [
        NodeMode::Baseline,
        NodeMode::Scheduled(SchedulerConfig::paper(Policy::Fifo)),
        NodeMode::Scheduled(SchedulerConfig::paper(Policy::Sept)),
        NodeMode::Scheduled(SchedulerConfig::paper(Policy::Eect)),
        NodeMode::Scheduled(SchedulerConfig::paper(Policy::Rect)),
        NodeMode::Scheduled(SchedulerConfig::paper(Policy::FairChoice)),
    ];
    for mode in &modes {
        let result = simulate_scenario(&catalogue, &scenario, mode, &node, 2);
        for o in &result.outcomes {
            assert!(o.invoker_receive >= o.release, "request hop is positive");
            assert!(o.exec_start >= o.invoker_receive, "no time travel to exec");
            assert!(o.exec_end >= o.exec_start, "execution takes time");
            assert!(o.completion >= o.exec_end, "response hop is positive");
            assert!(!o.processing.is_zero(), "processing time drawn");
        }
    }
}

#[test]
fn conservation_every_generated_call_is_answered_exactly_once() {
    let catalogue = Catalogue::sebs();
    let scenario = BurstScenario::standard(10, 60).generate(&catalogue, 3);
    let node = NodeConfig::paper(10);
    for mode in [
        NodeMode::Baseline,
        NodeMode::Scheduled(SchedulerConfig::paper(Policy::FairChoice)),
    ] {
        let result = simulate_scenario(&catalogue, &scenario, &mode, &node, 3);
        let calls = scenario.all_calls();
        assert_eq!(result.outcomes.len(), calls.len());
        let mut seen = std::collections::BTreeSet::new();
        for (o, c) in result.outcomes.iter().zip(&calls) {
            assert_eq!(o.id, c.id);
            assert_eq!(o.func, c.func);
            assert!(seen.insert(o.id), "duplicate outcome for {:?}", o.id);
        }
    }
}

#[test]
fn per_function_counts_survive_the_pipeline() {
    let catalogue = Catalogue::sebs();
    let scenario = BurstScenario::standard(10, 30).generate(&catalogue, 4);
    let node = NodeConfig::paper(10);
    let result = simulate_scenario(
        &catalogue,
        &scenario,
        &NodeMode::Scheduled(SchedulerConfig::paper(Policy::Rect)),
        &node,
        4,
    );
    for func in catalogue.ids() {
        let n = result.measured().filter(|o| o.func == func).count();
        assert_eq!(n, 30, "function {func:?} must keep its 30 calls");
    }
}

#[test]
fn cluster_and_single_node_agree_on_one_worker() {
    // A 1-node cluster must behave exactly like the node simulation it
    // wraps (same calls, same seed derivation modulo the cluster's seed
    // scrambling — so compare structure, not exact times).
    let catalogue = Catalogue::sebs();
    let scenario = ClusterScenario::generate(&catalogue, 12, 10, SimDuration::from_secs(60), 5);
    let cfg = ClusterConfig::independent(1, NodeConfig::paper(10), LoadBalancer::RoundRobin);
    let mode = NodeMode::Scheduled(SchedulerConfig::paper(Policy::Sept));
    let result = run_cluster(&catalogue, &scenario, &mode, &cfg, 5);
    let measured: Vec<&CallOutcome> = result.outcomes.iter().filter(|o| o.is_measured()).collect();
    assert_eq!(measured.len(), scenario.burst.len());
    assert!(measured.iter().all(|o| o.node == 0));
}

#[test]
fn stretch_and_response_are_coupled_through_the_reference() {
    let catalogue = Catalogue::sebs();
    let scenario = BurstScenario::standard(5, 30).generate(&catalogue, 6);
    let node = NodeConfig::paper(5);
    let result = simulate_scenario(
        &catalogue,
        &scenario,
        &NodeMode::Scheduled(SchedulerConfig::paper(Policy::Fifo)),
        &node,
        6,
    );
    for o in result.measured() {
        let reference = catalogue.spec(o.func).stretch_reference();
        let stretch = o.stretch(reference);
        let expected = o.response_time().as_secs_f64() / reference.as_secs_f64();
        assert!((stretch - expected).abs() < 1e-12);
    }
}
