//! Integration tests pinning the paper's headline claims, at reduced scale
//! so the suite stays fast. EXPERIMENTS.md holds the full-scale numbers.

use faas_scheduling::prelude::*;

fn run(
    catalogue: &Catalogue,
    scenario: &Scenario,
    mode: &NodeMode,
    cores: u32,
    seed: u64,
) -> NodeResult {
    simulate_scenario(catalogue, scenario, mode, &NodeConfig::paper(cores), seed)
}

fn avg_response(result: &NodeResult) -> f64 {
    let v: Vec<f64> = result
        .measured()
        .map(|o| o.response_time().as_secs_f64())
        .collect();
    v.iter().sum::<f64>() / v.len() as f64
}

fn avg_stretch(result: &NodeResult, catalogue: &Catalogue) -> f64 {
    let v: Vec<f64> = result
        .measured()
        .map(|o| o.stretch(catalogue.spec(o.func).stretch_reference()))
        .collect();
    v.iter().sum::<f64>() / v.len() as f64
}

/// §I / §VII-A: "In a loaded system, our method decreases the average
/// response time by a factor of 4" (SEPT/FC vs baseline, aggregated).
#[test]
fn headline_average_response_improvement() {
    let catalogue = Catalogue::sebs();
    let mut ratios = Vec::new();
    for (cores, intensity) in [(10u32, 60u32), (20, 30)] {
        let scenario = BurstScenario::standard(cores, intensity).generate(&catalogue, 7);
        let base = run(&catalogue, &scenario, &NodeMode::Baseline, cores, 7);
        let fc = run(
            &catalogue,
            &scenario,
            &NodeMode::Scheduled(SchedulerConfig::paper(Policy::FairChoice)),
            cores,
            7,
        );
        ratios.push(avg_response(&base) / avg_response(&fc));
    }
    let mean_ratio = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(
        mean_ratio > 2.0,
        "FC must beat the baseline severalfold under load, got {mean_ratio:.1}x"
    );
}

/// §I: "The improvement is even higher for shorter requests, as the average
/// stretch is decreased by a factor of 18."
#[test]
fn headline_stretch_improvement_exceeds_response_improvement() {
    let catalogue = Catalogue::sebs();
    let scenario = BurstScenario::standard(10, 60).generate(&catalogue, 8);
    let base = run(&catalogue, &scenario, &NodeMode::Baseline, 10, 8);
    let fc = run(
        &catalogue,
        &scenario,
        &NodeMode::Scheduled(SchedulerConfig::paper(Policy::FairChoice)),
        10,
        8,
    );
    let response_gain = avg_response(&base) / avg_response(&fc);
    let stretch_gain = avg_stretch(&base, &catalogue) / avg_stretch(&fc, &catalogue);
    assert!(stretch_gain > response_gain, "short requests gain the most");
    assert!(stretch_gain > 10.0, "stretch gain {stretch_gain:.0}x");
}

/// Table II's flip: our FIFO completes the load *slower* than the baseline
/// on few cores at low intensity, but *faster* at 20 cores.
#[test]
fn completion_time_flip_with_core_count() {
    let catalogue = Catalogue::sebs();

    let ratio = |cores: u32, intensity: u32, seed: u64| {
        let scenario = BurstScenario::standard(cores, intensity).generate(&catalogue, seed);
        let fifo = run(
            &catalogue,
            &scenario,
            &NodeMode::Scheduled(SchedulerConfig::paper(Policy::Fifo)),
            cores,
            seed,
        );
        let base = run(&catalogue, &scenario, &NodeMode::Baseline, cores, seed);
        let anchor = scenario.burst_start;
        fifo.last_completion.saturating_since(anchor).as_secs_f64()
            / base.last_completion.saturating_since(anchor).as_secs_f64()
    };

    // Paper Table II: 5 cores/intensity 30 -> 1.14-1.20 (FIFO slower).
    assert!(ratio(5, 30, 9) > 1.0, "baseline wins the 5-core race");
    // Paper Table II: 20 cores/intensity 60 -> 0.60-0.64 (FIFO faster).
    assert!(ratio(20, 60, 9) < 0.9, "our FIFO wins the 20-core race");
}

/// §VI / Fig. 2b: with the paper's container management and a 32 GiB pool,
/// warmed containers eliminate measured cold starts; OpenWhisk's greedy
/// creation does not.
#[test]
fn cold_start_contrast() {
    let catalogue = Catalogue::sebs();
    let scenario = BurstScenario::standard(10, 90).generate(&catalogue, 10);
    let ours = run(
        &catalogue,
        &scenario,
        &NodeMode::Scheduled(SchedulerConfig::paper(Policy::Fifo)),
        10,
        10,
    );
    let base = run(&catalogue, &scenario, &NodeMode::Baseline, 10, 10);
    assert!(ours.measured_cold_starts() < 10);
    assert!(base.measured_cold_starts() > 200);
}

/// §IV: EECT prevents starvation — under sustained pressure from shorter
/// calls, a long call still executes within a bounded horizon; under SEPT
/// it waits until the pressure stops.
#[test]
fn eect_is_starvation_resistant_where_sept_is_not() {
    use faas_scheduling::workload::trace::CallId as Id;
    use faas_scheduling::workload::trace::{Call, CallKind};
    let catalogue = Catalogue::sebs();
    let dna = catalogue.by_name("dna-visualisation").unwrap();
    let bfs = catalogue.by_name("graph-bfs").unwrap();

    // Warm the estimator first (the warm-up dna completes by ~11 s) so
    // SEPT/EECT know dna is long, then release the measured long call at
    // t=30 together with an unbroken stream of short calls on a single
    // action core: strictly more short work per second than the core can
    // serve, so SEPT never reaches the long call until the stream ends.
    let mut calls = vec![
        Call {
            id: Id(1),
            func: dna,
            release: SimTime::ZERO,
            kind: CallKind::Warmup,
        },
        Call {
            id: Id(0),
            func: dna,
            release: SimTime::from_secs(30),
            kind: CallKind::Measured,
        },
    ];
    // The stream starts before the long call's release, so the node is
    // already backlogged with short work when the long call arrives.
    let mut t = SimTime::from_secs(20);
    for id in 2u64..2002 {
        t += SimDuration::from_millis(50);
        calls.push(Call {
            id: Id(id),
            func: bfs,
            release: t,
            kind: CallKind::Measured,
        });
    }
    calls.sort_by_key(|c| (c.release, c.id));

    let node = NodeConfig::paper(1);
    let wait_of_dna = |policy: Policy| {
        let result = simulate_calls(
            &catalogue,
            &calls,
            &NodeMode::Scheduled(SchedulerConfig::paper(policy)),
            &node,
            11,
            0,
        );
        let delay = result
            .measured()
            .find(|o| o.func == dna)
            .expect("dna call served")
            .invoker_delay();
        delay.as_secs_f64()
    };

    let sept_wait = wait_of_dna(Policy::Sept);
    let eect_wait = wait_of_dna(Policy::Eect);
    // EECT's bound: calls received after r'(dna) + E(p(dna)) cannot pass
    // it, so its wait is capped by the backlog present at that cutoff
    // (~150 s of short work here) regardless of how long the stream runs.
    assert!(
        eect_wait < 200.0,
        "EECT wait must stay bounded, waited {eect_wait:.1}s"
    );
    // SEPT starves the long call until the whole stream drains.
    assert!(
        sept_wait > 2.0 * eect_wait,
        "SEPT wait {sept_wait:.1}s vs EECT {eect_wait:.1}s"
    );
}

/// §VIII: FC on 3 workers beats the baseline on 4 workers for the same
/// fixed load — the paper's headline configuration (18-core workers, 2376
/// total requests).
#[test]
fn fc_on_three_nodes_beats_baseline_on_four() {
    let catalogue = Catalogue::sebs();
    let scenario = ClusterScenario::generate(
        &catalogue,
        216, // 2376 requests total, as in SSVIII
        18,
        SimDuration::from_secs(60),
        12,
    );
    let run_cfg = |nodes: u16, mode: &NodeMode| {
        let cfg =
            ClusterConfig::independent(nodes, NodeConfig::paper(18), LoadBalancer::RoundRobin);
        let result = run_cluster(&catalogue, &scenario, mode, &cfg, 12);
        let v: Vec<f64> = result
            .outcomes
            .iter()
            .filter(|o| o.is_measured())
            .map(|o| o.response_time().as_secs_f64())
            .collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    let base4 = run_cfg(4, &NodeMode::Baseline);
    let fc3 = run_cfg(
        3,
        &NodeMode::Scheduled(SchedulerConfig::paper(Policy::FairChoice)),
    );
    assert!(
        fc3 < base4,
        "FC on 3 nodes ({fc3:.1}s) must beat baseline on 4 ({base4:.1}s)"
    );
}
