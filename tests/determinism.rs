//! Reproducibility guarantees: every layer of the stack is bit-for-bit
//! deterministic given its seed, and sensitive to seed changes.

use faas_scheduling::prelude::*;

#[test]
fn single_node_runs_are_bit_reproducible() {
    let catalogue = Catalogue::sebs();
    for policy in [
        Policy::Fifo,
        Policy::Sept,
        Policy::Eect,
        Policy::Rect,
        Policy::FairChoice,
    ] {
        let scenario = BurstScenario::standard(10, 40).generate(&catalogue, 77);
        let node = NodeConfig::paper(10);
        let mode = NodeMode::Scheduled(SchedulerConfig::paper(policy));
        let a = simulate_scenario(&catalogue, &scenario, &mode, &node, 77);
        let b = simulate_scenario(&catalogue, &scenario, &mode, &node, 77);
        assert_eq!(a.outcomes, b.outcomes, "{policy:?} must be deterministic");
        assert_eq!(a.measured_pool_stats, b.measured_pool_stats);
        assert_eq!(a.peak_queue, b.peak_queue);
    }
}

#[test]
fn baseline_runs_are_bit_reproducible() {
    let catalogue = Catalogue::sebs();
    let scenario = BurstScenario::standard(10, 60).generate(&catalogue, 78);
    let node = NodeConfig::paper(10);
    let a = simulate_scenario(&catalogue, &scenario, &NodeMode::Baseline, &node, 78);
    let b = simulate_scenario(&catalogue, &scenario, &NodeMode::Baseline, &node, 78);
    assert_eq!(a.outcomes, b.outcomes);
}

#[test]
fn different_seeds_change_outcomes() {
    let catalogue = Catalogue::sebs();
    let node = NodeConfig::paper(10);
    let mode = NodeMode::Scheduled(SchedulerConfig::paper(Policy::Sept));
    let s1 = BurstScenario::standard(10, 30).generate(&catalogue, 1);
    let s2 = BurstScenario::standard(10, 30).generate(&catalogue, 2);
    let a = simulate_scenario(&catalogue, &s1, &mode, &node, 1);
    let b = simulate_scenario(&catalogue, &s2, &mode, &node, 2);
    assert_ne!(a.outcomes, b.outcomes);
}

#[test]
fn same_scenario_different_sim_seed_changes_service_times_only() {
    // The scenario fixes the call sequence; the simulation seed drives
    // service-time draws. Changing only the latter must keep the call set
    // identical but change timings.
    let catalogue = Catalogue::sebs();
    let scenario = BurstScenario::standard(5, 30).generate(&catalogue, 9);
    let node = NodeConfig::paper(5);
    let mode = NodeMode::Scheduled(SchedulerConfig::paper(Policy::Fifo));
    let a = simulate_scenario(&catalogue, &scenario, &mode, &node, 100);
    let b = simulate_scenario(&catalogue, &scenario, &mode, &node, 200);
    assert_eq!(a.outcomes.len(), b.outcomes.len());
    for (oa, ob) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(oa.id, ob.id);
        assert_eq!(oa.func, ob.func);
        assert_eq!(oa.release, ob.release);
    }
    assert_ne!(a.outcomes, b.outcomes, "timings must differ");
}

#[test]
fn cluster_runs_are_reproducible() {
    let catalogue = Catalogue::sebs();
    let scenario = ClusterScenario::generate(&catalogue, 24, 10, SimDuration::from_secs(60), 13);
    let cfg = ClusterConfig::independent(3, NodeConfig::paper(10), LoadBalancer::FunctionHash);
    let mode = NodeMode::Scheduled(SchedulerConfig::paper(Policy::FairChoice));
    let a = run_cluster(&catalogue, &scenario, &mode, &cfg, 13);
    let b = run_cluster(&catalogue, &scenario, &mode, &cfg, 13);
    assert_eq!(a.outcomes, b.outcomes);
}

#[test]
fn scenario_generation_is_pure() {
    let catalogue = Catalogue::sebs();
    let a = BurstScenario::standard(20, 60).generate(&catalogue, 5);
    let b = BurstScenario::standard(20, 60).generate(&catalogue, 5);
    assert_eq!(a, b);
    let f1 = FairnessScenario::paper().generate(&catalogue, 5);
    let f2 = FairnessScenario::paper().generate(&catalogue, 5);
    assert_eq!(f1, f2);
}
