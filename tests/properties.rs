//! Property-based tests (proptest) on the core data structures and
//! cross-crate invariants.

use faas_scheduling::core::{PendingQueue, Policy, SchedulerConfig, SchedulerState};
use faas_scheduling::cpu::{GpsCpu, GpsParams};
use faas_scheduling::simcore::stats::{percentile_sorted, sorted_copy, BoxPlot, Summary};
use faas_scheduling::simcore::time::{SimDuration, SimTime};
use faas_scheduling::workload::scenario::BurstScenario;
use faas_scheduling::workload::sebs::{Catalogue, FuncId};
use proptest::prelude::*;

proptest! {
    /// The pending queue is an exact min-priority queue with FIFO ties.
    #[test]
    fn queue_pops_in_sorted_stable_order(
        priorities in prop::collection::vec(0u32..50, 1..200)
    ) {
        let mut q = PendingQueue::new();
        for (i, &p) in priorities.iter().enumerate() {
            q.push(p as f64, (p, i));
        }
        let mut expected: Vec<(u32, usize)> =
            priorities.iter().copied().enumerate().map(|(i, p)| (p, i)).collect();
        // Stable sort by priority reproduces the FIFO tie-break contract.
        expected.sort_by_key(|&(p, _)| p);
        let got: Vec<(u32, usize)> = std::iter::from_fn(|| q.pop()).collect();
        prop_assert_eq!(got, expected);
    }

    /// Interleaved pushes and pops never violate the heap property.
    #[test]
    fn queue_interleaved_ops_never_pop_out_of_order(
        ops in prop::collection::vec((any::<bool>(), 0u32..1000), 1..300)
    ) {
        let mut q = PendingQueue::new();
        let mut last_popped: Option<f64> = None;
        for (push, val) in ops {
            if push {
                let p = val as f64 / 10.0;
                // A push of a priority below the last popped value is legal;
                // it resets the monotonicity watermark.
                if let Some(lp) = last_popped {
                    if p < lp {
                        last_popped = None;
                    }
                }
                q.push(p, p);
            } else if let Some(p) = q.pop() {
                if let Some(lp) = last_popped {
                    prop_assert!(p >= lp, "popped {p} after {lp}");
                }
                last_popped = Some(p);
            }
        }
    }

    /// The estimator equals a brute-force mean of the last k observations.
    #[test]
    fn estimator_matches_reference_model(
        window in 1usize..20,
        observations in prop::collection::vec(0u64..10_000, 0..100)
    ) {
        let mut state = SchedulerState::new(
            1,
            SchedulerConfig {
                estimate_window: window,
                ..SchedulerConfig::paper(Policy::Sept)
            },
        );
        for (i, &ms) in observations.iter().enumerate() {
            state.on_complete(
                FuncId(0),
                SimDuration::from_millis(ms),
                SimTime::from_millis(i as u64),
            );
        }
        let tail: Vec<f64> = observations
            .iter()
            .rev()
            .take(window)
            .map(|&ms| ms as f64 / 1000.0)
            .collect();
        let expected = if tail.is_empty() {
            0.0
        } else {
            tail.iter().sum::<f64>() / tail.len() as f64
        };
        prop_assert!((state.estimate_secs(FuncId(0)) - expected).abs() < 1e-9);
    }

    /// GPS conserves work under arbitrary churn: injected = done + residual.
    #[test]
    fn gps_conserves_work(
        kappa in 0.0f64..1.0,
        cores in 1u32..16,
        tasks in prop::collection::vec((1u64..5_000, 1u64..2_000), 1..60)
    ) {
        let mut cpu = GpsCpu::new(GpsParams {
            cores: cores as f64,
            ctx_switch_penalty: kappa,
            penalty_cap: 3.0,
        });
        let mut t = SimTime::ZERO;
        let mut injected = 0.0;
        let mut live = Vec::new();
        for (i, &(work_ms, gap_ms)) in tasks.iter().enumerate() {
            t += SimDuration::from_millis(gap_ms);
            let work = work_ms as f64 / 1000.0;
            injected += work;
            live.push(cpu.add_task(t, work, 1.0, 1.0));
            if i % 4 == 3 {
                let id = live.remove(0);
                injected -= cpu.remove_task(t, id);
            }
        }
        let end = t + SimDuration::from_secs(100_000);
        cpu.advance(end);
        let mut residual = 0.0;
        for id in live {
            residual += cpu.remove_task(end, id);
        }
        prop_assert!(
            (cpu.work_done() + residual - injected).abs() < 1e-5,
            "done={} residual={} injected={}",
            cpu.work_done(), residual, injected
        );
    }

    /// GPS rates never exceed the per-task cap or the total capacity.
    #[test]
    fn gps_rates_respect_caps(
        cores in 1u32..8,
        n_tasks in 1usize..40,
        kappa in 0.0f64..0.5
    ) {
        let mut cpu = GpsCpu::new(GpsParams {
            cores: cores as f64,
            ctx_switch_penalty: kappa,
            penalty_cap: 3.0,
        });
        let ids: Vec<_> = (0..n_tasks)
            .map(|_| cpu.add_task(SimTime::ZERO, 10.0, 1.0, 1.0))
            .collect();
        let mut total = 0.0;
        for id in ids {
            let rate = cpu.current_rate(id);
            prop_assert!(rate <= 1.0 + 1e-12, "per-task cap");
            prop_assert!(rate > 0.0, "work-conserving");
            total += rate;
        }
        prop_assert!(total <= cores as f64 + 1e-9, "capacity cap");
    }

    /// Percentile estimates are bounded by the data and monotone in q.
    #[test]
    fn percentiles_bounded_and_monotone(
        data in prop::collection::vec(-1e6f64..1e6, 1..200),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0
    ) {
        let sorted = sorted_copy(&data);
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        let p_lo = percentile_sorted(&sorted, lo);
        let p_hi = percentile_sorted(&sorted, hi);
        prop_assert!(p_lo <= p_hi + 1e-9);
        prop_assert!(p_lo >= sorted[0] - 1e-9);
        prop_assert!(p_hi <= sorted[sorted.len() - 1] + 1e-9);
    }

    /// Box-plot invariants: fences ordered, whiskers inside data range.
    #[test]
    fn boxplot_invariants(
        data in prop::collection::vec(0f64..1e4, 1..200)
    ) {
        let b = BoxPlot::from_data(&data);
        prop_assert!(b.whisker_lo <= b.p25 + 1e-9);
        prop_assert!(b.p25 <= b.median + 1e-9);
        prop_assert!(b.median <= b.p75 + 1e-9);
        prop_assert!(b.p75 <= b.whisker_hi + 1e-9);
        let s = Summary::from_data(&data);
        prop_assert!(b.whisker_lo >= s.min - 1e-9);
        prop_assert!(b.whisker_hi <= s.max + 1e-9);
        prop_assert!(b.outliers < data.len());
    }

    /// Scenario generation: the request-count formula and window bounds
    /// hold for arbitrary (cores, intensity).
    #[test]
    fn scenario_counts_and_bounds(
        cores in 1u32..24,
        intensity in prop::sample::select(vec![10u32, 20, 30, 40, 60, 90, 120]),
        seed in any::<u64>()
    ) {
        let catalogue = Catalogue::sebs();
        let spec = BurstScenario::standard(cores, intensity);
        let scenario = spec.generate(&catalogue, seed);
        prop_assert_eq!(
            scenario.burst.len(),
            11 * (cores as usize) * (intensity as usize) / 10
        );
        let end = scenario.burst_start + scenario.burst_window;
        for call in &scenario.burst {
            prop_assert!(call.release >= scenario.burst_start);
            prop_assert!(call.release < end);
        }
        // Warm-up: cores calls per function, all before the burst.
        prop_assert_eq!(scenario.warmup.len(), 11 * cores as usize);
        for call in &scenario.warmup {
            prop_assert!(call.release < scenario.burst_start);
        }
    }

    /// Priorities computed by the scheduler are finite for every policy and
    /// any (bounded) history.
    #[test]
    fn priorities_are_always_finite(
        policy_idx in 0usize..5,
        events in prop::collection::vec((0u16..11, 1u64..100_000), 1..200)
    ) {
        let policy = Policy::ALL[policy_idx];
        let catalogue = Catalogue::sebs();
        let mut state = SchedulerState::new(
            catalogue.len(),
            SchedulerConfig::paper(policy),
        );
        let mut t = SimTime::ZERO;
        for (i, &(func, dt_ms)) in events.iter().enumerate() {
            t += SimDuration::from_millis(dt_ms);
            let func = FuncId(func);
            if i % 3 == 2 {
                state.on_complete(func, SimDuration::from_millis(dt_ms), t);
            } else {
                let p = state.on_receive(func, t);
                prop_assert!(p.is_finite(), "{policy:?} produced {p}");
                prop_assert!(p >= 0.0, "{policy:?} produced negative {p}");
            }
        }
    }
}
