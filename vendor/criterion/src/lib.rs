//! Offline stand-in for `criterion`.
//!
//! Provides the API surface this workspace's benches use — `Criterion`,
//! `BenchmarkGroup`, `Bencher::iter`/`iter_batched`, `BenchmarkId`,
//! `BatchSize`, and the `criterion_group!`/`criterion_main!` macros — with a
//! simple median-of-samples timing loop instead of criterion's statistical
//! machinery. Each benchmark prints one `name  time: <median> <unit>/iter`
//! line, so regressions remain visible in CI logs.

use std::time::{Duration, Instant};

/// Upper bound on the wall-clock budget of one benchmark target, so heavy
/// simulation benches stay usable as a smoke test.
const TARGET_BUDGET: Duration = Duration::from_secs(5);

/// Identifier of a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `group/function` style id.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }

    /// Id carrying only the parameter value.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId(param.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

/// How `iter_batched` amortises setup cost (ignored by the stand-in).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Call setup before every routine invocation.
    PerIteration,
    /// Criterion's small-input batching.
    SmallInput,
    /// Criterion's large-input batching.
    LargeInput,
}

/// Timing loop handle passed to the benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measure `f` repeatedly.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // One untimed warm-up call; it also calibrates the per-call cost so
        // expensive bodies get fewer samples within the budget.
        let warmup_start = Instant::now();
        std::hint::black_box(f());
        let per_call = warmup_start.elapsed();
        let budget_calls = (TARGET_BUDGET.as_nanos() / per_call.as_nanos().max(1)).max(1) as usize;
        let n = self.sample_size.min(budget_calls).max(3);
        for _ in 0..n {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    /// Measure `routine` with a fresh untimed `setup` product per call.
    pub fn iter_batched<S, R, Setup, Routine>(
        &mut self,
        mut setup: Setup,
        mut routine: Routine,
        _size: BatchSize,
    ) where
        Setup: FnMut() -> S,
        Routine: FnMut(S) -> R,
    {
        std::hint::black_box(routine(setup()));
        let mut calibrated: Option<usize> = None;
        let mut done = 0usize;
        while done < calibrated.unwrap_or(1) {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            let elapsed = start.elapsed();
            self.samples.push(elapsed);
            if calibrated.is_none() {
                let budget = (TARGET_BUDGET.as_nanos() / elapsed.as_nanos().max(1)).max(1) as usize;
                calibrated = Some(self.sample_size.min(budget).max(3));
            }
            done += 1;
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn run_one(full_name: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    b.samples.sort_unstable();
    let median = b
        .samples
        .get(b.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    println!(
        "bench: {full_name:<50} time: {} /iter ({} samples)",
        format_duration(median),
        b.samples.len()
    );
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Run one benchmark function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, |b| f(b));
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.0), self.sample_size, |b| {
            f(b)
        });
        self
    }

    /// Run one parameterised benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.0), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Finish the group (no-op in the stand-in).
    pub fn finish(self) {}
}

/// Define a benchmark group function, in either criterion macro form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
