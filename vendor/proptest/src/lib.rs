//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace uses: the `proptest!` macro,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, integer and float range
//! strategies, tuple strategies, `prop::collection::vec`,
//! `prop::sample::{select, Index}`, `any` for primitives, and
//! `ProptestConfig::with_cases`.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the case number and the
//!   per-test RNG seed; re-running reproduces it exactly (generation is
//!   deterministic per test name).
//! * Case count defaults to 256 and can be overridden globally with the
//!   `PROPTEST_CASES` environment variable (smaller of the two wins so
//!   heavy suites can be capped in CI).

use std::ops::{Range, RangeInclusive};

/// Deterministic split-mix-based RNG driving all generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded directly.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Deterministic per-test RNG: seeded from the test's name so every run
    /// of the suite generates identical cases.
    pub fn for_test(name: &str) -> Self {
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift rejection-free mapping; bias is irrelevant here.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f` (mirrors proptest's `prop_map`;
    /// the stand-in maps eagerly since it never shrinks).
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy yielding one fixed value (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies; built by [`prop_oneof!`]. Arms
/// are unweighted — repeat an arm to bias the draw.
pub struct Union<T>(Vec<Box<dyn Strategy<Value = T>>>);

impl<T> Union<T> {
    /// A union of the given options (at least one).
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union(options)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0[rng.below(self.0.len() as u64) as usize].generate(rng)
    }
}

/// Box a strategy for [`Union`] (helper for the `prop_oneof!` expansion).
pub fn boxed_strategy<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let x = self.start as f64
                    + rng.unit_f64() * (self.end as f64 - self.start as f64);
                x as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident : $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
}

/// String strategies are written as regexes in proptest; the stand-in
/// supports the subset `[class]{m,n}` / `[class]` / literal characters,
/// where a class contains literal characters and `a-z` style ranges.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = self.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let options: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .expect("unterminated character class in strategy regex")
                    + i;
                let mut opts = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        for c in chars[j]..=chars[j + 2] {
                            opts.push(c);
                        }
                        j += 3;
                    } else {
                        opts.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                opts
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            let (lo, hi) = if chars.get(i) == Some(&'{') {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated repetition in strategy regex")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                let (lo, hi) = match body.split_once(',') {
                    Some((lo, hi)) => (lo.parse().unwrap(), hi.parse().unwrap()),
                    None => {
                        let n: usize = body.parse().unwrap();
                        (n, n)
                    }
                };
                i = close + 1;
                (lo, hi)
            } else {
                (1, 1)
            };
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..len {
                out.push(options[rng.below(options.len() as u64) as usize]);
            }
        }
        out
    }
}

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy produced by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification accepted by [`vec`].
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.lo + rng.below((self.size.hi - self.size.lo) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Arbitrary, Strategy, TestRng};

    /// An index into a collection of yet-unknown length.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Resolve against a concrete collection length.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }

    /// Strategy choosing uniformly among fixed options.
    pub struct Select<T>(Vec<T>);

    /// `prop::sample::select(options)`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

/// Runner configuration (`cases` only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Effective case count: the configured count, capped by `PROPTEST_CASES`
/// when that environment variable is set.
pub fn effective_cases(cfg: &ProptestConfig) -> u32 {
    match std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse::<u32>().ok())
    {
        Some(env_cases) => cfg.cases.min(env_cases.max(1)),
        None => cfg.cases,
    }
}

/// The `proptest::prelude` namespace, mirroring the real crate.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestRng,
    };

    /// Mirror of the real prelude's `prop` module path.
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

/// Uniform choice among strategies producing one value type. Supports the
/// unweighted arm form only; repeat arms to approximate weights.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed_strategy($strategy)),+])
    };
}

/// Assert inside a property; panics (no shrinking in the stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Discard the current case when its inputs don't satisfy a precondition.
/// Expands to a plain `continue` of the case loop generated by
/// [`proptest!`], so it must be used at the top level of the test body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Define property tests. Supports the optional
/// `#![proptest_config(expr)]` header and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let cases = $crate::effective_cases(&config);
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let guard = $crate::CaseGuard::new(stringify!($name), case);
                $body
                guard.disarm();
            }
        }
    )*};
}

/// Panic-context helper: reports which generated case failed, since the
/// stand-in does not shrink.
pub struct CaseGuard {
    name: &'static str,
    case: u32,
    armed: bool,
}

impl CaseGuard {
    /// Arm a guard for one case.
    pub fn new(name: &'static str, case: u32) -> Self {
        CaseGuard {
            name,
            case,
            armed: true,
        }
    }

    /// The case completed; do not report on drop.
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "proptest stand-in: property `{}` failed on case {} \
                 (deterministic per test name; rerun reproduces it)",
                self.name, self.case
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 5u32..17, y in -2.0f64..3.5) {
            prop_assert!((5..17).contains(&x));
            prop_assert!((-2.0..3.5).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(0u8..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn assume_skips_cases(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn select_picks_an_option(x in prop::sample::select(vec![3u32, 5, 9])) {
            prop_assert!([3u32, 5, 9].contains(&x));
        }

        #[test]
        fn map_just_and_oneof_compose(
            x in prop_oneof![
                (0u32..10).prop_map(|n| n * 2),
                Just(99u32),
            ]
        ) {
            prop_assert!(x == 99 || (x % 2 == 0 && x < 20));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = 0u64..1_000_000;
        let mut a = TestRng::for_test("det");
        let mut b = TestRng::for_test("det");
        for _ in 0..100 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}
