//! Offline stand-in for `serde_json`, built on the local `serde` crate's
//! [`Value`] data model. Provides `to_string` / `to_string_pretty` /
//! `from_str` — the surface this workspace uses.

pub use serde::{Error, Value};

/// Serialize `value` as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text and deserialize it into `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    T::from_value(&v)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // `{:?}` prints the shortest representation that round-trips
                // and always includes a decimal point or exponent.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Result<u8, Error> {
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of JSON"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.expect_keyword("null").map(|()| Value::Null),
            b't' => self.expect_keyword("true").map(|()| Value::Bool(true)),
            b'f' => self.expect_keyword("false").map(|()| Value::Bool(false)),
            b'"' => self.parse_string().map(Value::Str),
            b'[' => self.parse_array(),
            b'{' => self.parse_object(),
            _ => self.parse_number(),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::custom("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::custom("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek()?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek()?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(Error::custom("unknown escape sequence")),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Re-decode the multi-byte UTF-8 sequence.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let slice = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| Error::custom("truncated UTF-8"))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if text.is_empty() {
            return Err(Error::custom(format!("unexpected byte at {}", start)));
        }
        if text.contains(['.', 'e', 'E']) {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_collections() {
        let v = vec![1i64, -5, 42];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,-5,42]");
        let back: Vec<i64> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        let xs = [0.1f64, 1e-9, 123456.789, -2.5e300, 3.0];
        let s = to_string(&xs.to_vec()).unwrap();
        let back: Vec<f64> = from_str(&s).unwrap();
        assert_eq!(back, xs.to_vec());
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = to_string("a\"b\\c\nd").unwrap();
        let back: String = from_str(&s).unwrap();
        assert_eq!(back, "a\"b\\c\nd");
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = vec![vec![1, 2]];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\n  "));
        let back: Vec<Vec<i32>> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }
}
