//! Offline stand-in for `rayon`.
//!
//! Implements the `par_iter().map(f).collect()` shape this workspace uses
//! with real data parallelism: the input slice is split into contiguous
//! chunks, one per available core, each chunk is mapped on its own scoped
//! thread, and the per-chunk outputs are concatenated in input order — so
//! results are deterministic and identical to the sequential computation.
//! There is no work-stealing; for the coarse-grained simulation tasks this
//! workspace parallelizes (whole node/seed simulations per item), static
//! chunking is within noise of a real work-stealing pool.

/// Everything needed for `slice.par_iter().map(..).collect()`.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParIter, ParMap};
}

/// Number of worker threads: respects `RAYON_NUM_THREADS`, defaults to the
/// number of available cores.
pub fn current_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Types that can hand out a parallel iterator over `&self`'s items.
pub trait IntoParallelRefIterator<'a> {
    /// Item yielded by reference.
    type Item: Sync + 'a;
    /// Create the parallel iterator.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map each item through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// The result of [`ParIter::map`], ready to collect.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Run the map on a scoped thread pool and collect the results in input
    /// order.
    pub fn collect<R, C>(self) -> C
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        run_chunked(self.items, &self.f).into_iter().collect()
    }
}

/// Chunked parallel map preserving input order.
fn run_chunked<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync>(items: &'a [T], f: &F) -> Vec<R> {
    let threads = current_num_threads().min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut chunk_outputs: Vec<Vec<R>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            chunk_outputs.push(h.join().expect("rayon stand-in worker panicked"));
        }
    });
    chunk_outputs.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn collect_preserves_order() {
        let xs: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_on_tiny_inputs() {
        let xs = [7u32];
        let out: Vec<u32> = xs.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn empty_input_collects_empty() {
        let xs: Vec<u8> = Vec::new();
        let out: Vec<u8> = xs.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }
}
