//! Offline stand-in for `rayon`.
//!
//! Implements the `par_iter().map(f).collect()` shape this workspace uses
//! with real data parallelism: the input slice is split into contiguous
//! chunks, one per available core, each chunk is mapped on its own scoped
//! thread, and the per-chunk outputs are concatenated in input order — so
//! results are deterministic and identical to the sequential computation.
//! There is no work-stealing; for the coarse-grained simulation tasks this
//! workspace parallelizes (whole node/seed simulations per item), static
//! chunking is within noise of a real work-stealing pool.

/// Everything needed for `slice.par_iter().map(..).collect()` and
/// `slice.par_iter_mut().map(..).collect()`.
pub mod prelude {
    pub use crate::{
        IntoParallelRefIterator, IntoParallelRefMutIterator, ParIter, ParIterMut, ParMap, ParMapMut,
    };
}

/// Number of worker threads: respects `RAYON_NUM_THREADS`, defaults to the
/// number of available cores.
pub fn current_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Types that can hand out a parallel iterator over `&self`'s items.
pub trait IntoParallelRefIterator<'a> {
    /// Item yielded by reference.
    type Item: Sync + 'a;
    /// Create the parallel iterator.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map each item through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// The result of [`ParIter::map`], ready to collect.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Run the map on a scoped thread pool and collect the results in input
    /// order.
    pub fn collect<R, C>(self) -> C
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        run_chunked(self.items, &self.f).into_iter().collect()
    }
}

/// Types that can hand out a parallel iterator over `&mut self`'s items.
pub trait IntoParallelRefMutIterator<'a> {
    /// Item yielded by mutable reference.
    type Item: Send + 'a;
    /// Create the mutable parallel iterator.
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { items: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { items: self }
    }
}

/// Mutably borrowing parallel iterator over a slice.
pub struct ParIterMut<'a, T> {
    items: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Map each item through `f` in parallel, with mutable access.
    pub fn map<R, F>(self, f: F) -> ParMapMut<'a, T, F>
    where
        F: Fn(&'a mut T) -> R + Sync,
        R: Send,
    {
        ParMapMut {
            items: self.items,
            f,
        }
    }
}

/// The result of [`ParIterMut::map`], ready to collect.
pub struct ParMapMut<'a, T, F> {
    items: &'a mut [T],
    f: F,
}

impl<'a, T: Send, F> ParMapMut<'a, T, F> {
    /// Run the map on a scoped thread pool and collect the results in input
    /// order. Items are split into contiguous chunks via `chunks_mut`, so
    /// each item is mutated by exactly one thread and the output order is
    /// the input order — identical to the sequential computation.
    pub fn collect<R, C>(self) -> C
    where
        F: Fn(&'a mut T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        run_chunked_mut(self.items, &self.f).into_iter().collect()
    }
}

/// Chunked mutable parallel map preserving input order.
fn run_chunked_mut<'a, T: Send, R: Send, F: Fn(&'a mut T) -> R + Sync>(
    items: &'a mut [T],
    f: &F,
) -> Vec<R> {
    let threads = current_num_threads().min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter_mut().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut chunk_outputs: Vec<Vec<R>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks_mut(chunk_len)
            .map(|chunk| scope.spawn(move || chunk.iter_mut().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            chunk_outputs.push(h.join().expect("rayon stand-in worker panicked"));
        }
    });
    chunk_outputs.into_iter().flatten().collect()
}

/// Chunked parallel map preserving input order.
fn run_chunked<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync>(items: &'a [T], f: &F) -> Vec<R> {
    let threads = current_num_threads().min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut chunk_outputs: Vec<Vec<R>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            chunk_outputs.push(h.join().expect("rayon stand-in worker panicked"));
        }
    });
    chunk_outputs.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn collect_preserves_order() {
        let xs: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_on_tiny_inputs() {
        let xs = [7u32];
        let out: Vec<u32> = xs.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn empty_input_collects_empty() {
        let xs: Vec<u8> = Vec::new();
        let out: Vec<u8> = xs.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn mut_map_mutates_in_place_and_preserves_order() {
        let mut xs: Vec<u64> = (0..10_000).collect();
        let seen: Vec<u64> = xs
            .par_iter_mut()
            .map(|x| {
                *x += 1;
                *x
            })
            .collect();
        assert_eq!(seen, (1..=10_000).collect::<Vec<_>>());
        assert_eq!(xs, (1..=10_000).collect::<Vec<_>>());
    }

    #[test]
    fn mut_map_works_on_tiny_and_empty_inputs() {
        let mut one = [5u32];
        let out: Vec<u32> = one.par_iter_mut().map(|x| *x * 2).collect();
        assert_eq!(out, vec![10]);
        let mut none: Vec<u8> = Vec::new();
        let out: Vec<u8> = none.par_iter_mut().map(|x| *x).collect();
        assert!(out.is_empty());
    }
}
