//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal serialization framework under the `serde` name. Instead of
//! serde's visitor-based zero-copy data model, types convert to and from a
//! self-describing [`Value`] tree; the companion `serde_json` stand-in
//! renders and parses that tree as JSON. The `derive` macros (re-exported
//! from the local `serde_derive` proc-macro crate) generate the same
//! field/variant encodings serde's JSON representation uses:
//!
//! * named-field structs become maps;
//! * one-field tuple structs are transparent newtypes;
//! * multi-field tuple structs become sequences;
//! * unit enum variants become strings, data-carrying variants become
//!   single-entry maps keyed by the variant name.
//!
//! Only the API surface this workspace uses is provided.

pub use serde_derive::{Deserialize, Serialize};

/// Self-describing serialized tree, the JSON data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integer (covers the full `u64`/`i64` ranges).
    Int(i128),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object; insertion order is preserved.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The entries of a map value, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements of a sequence value, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Create an error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can convert themselves into a [`Value`].
pub trait Serialize {
    /// Serialize `self` into the value tree.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Deserialize from the value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Look up a required struct field in a map value (derive-macro helper).
pub fn get_field<'a>(map: &'a [(String, Value)], name: &str) -> Result<&'a Value, Error> {
    map.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::custom("integer out of range")),
                    _ => Err(Error::custom("expected integer")),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, i128, u8, u16, u32, u64, usize, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(x) => Ok(*x as $t),
                    Value::Int(i) => Ok(*i as $t),
                    _ => Err(Error::custom("expected number")),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Deserialize for &'static str {
    /// Deserializing into a `&'static str` leaks the parsed string. This
    /// only exists so configuration structs holding literal names can derive
    /// `Deserialize`; the strings involved are small and few.
    fn from_value(v: &Value) -> Result<Self, Error> {
        String::from_value(v).map(|s| &*s.leak())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let seq = v.as_seq().ok_or_else(|| Error::custom("expected array"))?;
                let mut it = seq.iter();
                Ok(($(
                    {
                        let _ = $idx;
                        $t::from_value(it.next().ok_or_else(|| Error::custom("tuple too short"))?)?
                    },
                )+))
            }
        }
    )*};
}

impl_tuple! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
}
