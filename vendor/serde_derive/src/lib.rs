//! Derive macros for the offline `serde` stand-in.
//!
//! Hand-rolled over `proc_macro::TokenStream` (no `syn`/`quote` available
//! offline). Supports the shapes this workspace uses: non-generic structs
//! with named fields, tuple structs, and enums whose variants are unit,
//! tuple, or struct-like. Generated code targets the `Value` data model of
//! the local `serde` crate.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Input {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Skip leading `#[...]` attribute groups starting at `i`.
fn skip_attrs(toks: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < toks.len() {
        match (&toks[i], &toks[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, ...) starting at `i`.
fn skip_vis(toks: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = toks.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Split the tokens of a field/variant list on top-level commas, tracking
/// angle-bracket depth so generic arguments don't split.
fn split_top_level(toks: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut parts: Vec<Vec<TokenTree>> = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle = 0i32;
    for t in toks {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    parts.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        parts.push(cur);
    }
    parts
}

/// Field names of a named-field list (the brace-group contents).
fn named_fields(group: &[TokenTree]) -> Vec<String> {
    split_top_level(group)
        .iter()
        .filter_map(|part| {
            let i = skip_vis(part, skip_attrs(part, 0));
            match part.get(i) {
                Some(TokenTree::Ident(id)) => Some(id.to_string()),
                _ => None,
            }
        })
        .collect()
}

fn parse_shape_after_name(toks: &[TokenTree], i: usize) -> Shape {
    match toks.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Shape::Named(named_fields(&g.stream().into_iter().collect::<Vec<_>>()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Shape::Tuple(split_top_level(&inner).len())
        }
        _ => Shape::Unit,
    }
}

fn parse_variants(group: &[TokenTree]) -> Vec<Variant> {
    split_top_level(group)
        .iter()
        .filter_map(|part| {
            let i = skip_attrs(part, 0);
            let TokenTree::Ident(id) = part.get(i)? else {
                return None;
            };
            Some(Variant {
                name: id.to_string(),
                shape: parse_shape_after_name(part, i + 1),
            })
        })
        .collect()
}

fn parse_input(input: TokenStream) -> Input {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&toks, skip_attrs(&toks, 0));
    let kind = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        assert!(
            p.as_char() != '<',
            "the offline serde derive does not support generic types"
        );
    }
    match kind.as_str() {
        "struct" => Input::Struct {
            name,
            shape: parse_shape_after_name(&toks, i),
        },
        "enum" => {
            let TokenTree::Group(g) = &toks[i] else {
                panic!("expected enum body");
            };
            Input::Enum {
                name,
                variants: parse_variants(&g.stream().into_iter().collect::<Vec<_>>()),
            }
        }
        other => panic!("cannot derive for `{other}` items"),
    }
}

fn field_entries(fields: &[String], prefix: &str) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&{prefix}{f}))"
            )
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// `impl Serialize` body for one shape given an expression prefix
/// (`self.` for structs, bound names for enum variants).
fn serialize_impl(input: &Input) -> String {
    match input {
        Input::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => "::serde::Value::Map(::std::vec::Vec::new())".to_string(),
                Shape::Named(fields) => format!(
                    "::serde::Value::Map(::std::vec![{}])",
                    field_entries(fields, "self.")
                ),
                Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Shape::Tuple(n) => {
                    let elems = (0..*n)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!("::serde::Value::Seq(::std::vec![{elems}])")
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{ \
                   fn to_value(&self) -> ::serde::Value {{ {body} }} \
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let arms = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        Shape::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Map(::std::vec![(\
                               ::std::string::String::from(\"{vn}\"), \
                               ::serde::Serialize::to_value(f0))]),"
                        ),
                        Shape::Tuple(n) => {
                            let binds = (0..*n)
                                .map(|k| format!("f{k}"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            let elems = (0..*n)
                                .map(|k| format!("::serde::Serialize::to_value(f{k})"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Map(::std::vec![(\
                                   ::std::string::String::from(\"{vn}\"), \
                                   ::serde::Value::Seq(::std::vec![{elems}]))]),"
                            )
                        }
                        Shape::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries = field_entries(fields, "");
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(::std::vec![(\
                                   ::std::string::String::from(\"{vn}\"), \
                                   ::serde::Value::Map(::std::vec![{entries}]))]),"
                            )
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "impl ::serde::Serialize for {name} {{ \
                   fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }} \
                 }}"
            )
        }
    }
}

fn named_from_map(type_path: &str, fields: &[String]) -> String {
    let inits = fields
        .iter()
        .map(|f| {
            format!("{f}: ::serde::Deserialize::from_value(::serde::get_field(map, \"{f}\")?)?")
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!("{type_path} {{ {inits} }}")
}

fn tuple_from_seq(type_path: &str, n: usize) -> String {
    let elems = (0..n)
        .map(|k| {
            format!(
                "::serde::Deserialize::from_value(seq.get({k}).ok_or_else(|| \
                 ::serde::Error::custom(\"sequence too short\"))?)?"
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!("{type_path}({elems})")
}

fn deserialize_impl(input: &Input) -> String {
    match input {
        Input::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => format!("::std::result::Result::Ok({name})"),
                Shape::Named(fields) => format!(
                    "let map = v.as_map().ok_or_else(|| \
                       ::serde::Error::custom(\"expected map for {name}\"))?; \
                     ::std::result::Result::Ok({})",
                    named_from_map(name, fields)
                ),
                Shape::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
                ),
                Shape::Tuple(n) => format!(
                    "let seq = v.as_seq().ok_or_else(|| \
                       ::serde::Error::custom(\"expected sequence for {name}\"))?; \
                     ::std::result::Result::Ok({})",
                    tuple_from_seq(name, *n)
                ),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{ \
                   fn from_value(v: &::serde::Value) -> \
                       ::std::result::Result<Self, ::serde::Error> {{ {body} }} \
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let unit_arms = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
                .collect::<Vec<_>>()
                .join("\n");
            let data_arms = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    let path = format!("{name}::{vn}");
                    match &v.shape {
                        Shape::Unit => None,
                        Shape::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok({path}(\
                               ::serde::Deserialize::from_value(payload)?)),"
                        )),
                        Shape::Tuple(n) => Some(format!(
                            "\"{vn}\" => {{ let seq = payload.as_seq().ok_or_else(|| \
                               ::serde::Error::custom(\"expected sequence\"))?; \
                               ::std::result::Result::Ok({}) }},",
                            tuple_from_seq(&path, *n)
                        )),
                        Shape::Named(fields) => Some(format!(
                            "\"{vn}\" => {{ let map = payload.as_map().ok_or_else(|| \
                               ::serde::Error::custom(\"expected map\"))?; \
                               ::std::result::Result::Ok({}) }},",
                            named_from_map(&path, fields)
                        )),
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "impl ::serde::Deserialize for {name} {{ \
                   fn from_value(v: &::serde::Value) -> \
                       ::std::result::Result<Self, ::serde::Error> {{ \
                     match v {{ \
                       ::serde::Value::Str(s) => match s.as_str() {{ \
                         {unit_arms} \
                         other => ::std::result::Result::Err(::serde::Error::custom( \
                           ::std::format!(\"unknown variant `{{other}}` of {name}\"))), \
                       }}, \
                       ::serde::Value::Map(m) if m.len() == 1 => {{ \
                         let (tag, payload) = &m[0]; \
                         match tag.as_str() {{ \
                           {data_arms} \
                           other => ::std::result::Result::Err(::serde::Error::custom( \
                             ::std::format!(\"unknown variant `{{other}}` of {name}\"))), \
                         }} \
                       }}, \
                       _ => ::std::result::Result::Err(::serde::Error::custom( \
                         \"expected string or single-entry map for {name}\")), \
                     }} \
                   }} \
                 }}"
            )
        }
    }
}

/// Derive the `Serialize` half of the offline serde data model.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    serialize_impl(&parsed)
        .parse()
        .expect("serde_derive generated invalid Serialize impl")
}

/// Derive the `Deserialize` half of the offline serde data model.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    deserialize_impl(&parsed)
        .parse()
        .expect("serde_derive generated invalid Deserialize impl")
}
